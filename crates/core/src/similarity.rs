//! The six similarity functions of §V-B and their cached computation engine.
//!
//! | γ | What | Family |
//! |---|------|--------|
//! | γ₁ | normalised Weisfeiler-Lehman subgraph kernel | Gaussian |
//! | γ₂ | co-author clique (triangle) coincidence ratio | Exponential |
//! | γ₃ | cosine of keyword-embedding centroids | Gaussian |
//! | γ₄ | time consistency of research interests | Exponential |
//! | γ₅ | representative-community coincidence | Exponential |
//! | γ₆ | Adamic/Adar research-community similarity | Exponential |
//!
//! Families: bounded, symmetric-ish scores are modelled Gaussian; sparse
//! non-negative ratios are modelled Exponential (§V-C uses the exponential
//! family precisely so heterogeneous features can coexist in one
//! likelihood).
//!
//! γ₄ deviation: the paper writes `e^{α·min(b)}` with α = 0.62, citing the
//! FutureRank *decay* factor; a positive exponent rewards temporally distant
//! reuse, contradicting the stated intuition, so we implement the decay
//! `e^{−α·min(b)}` (see DESIGN.md).
//!
//! Hot-path layout: every per-pair input is a sorted slice — WL features
//! ([`SparseFeatures`]), name triangles, keyword years, venue counts — so
//! each γ is a two-pointer merge join over contiguous memory, and the
//! engine's caches are dense `Vec` slabs indexed by vertex id, so a
//! candidate-pair evaluation performs no hash lookups at all.

use iuad_graph::triangles::triangles_of;
use iuad_graph::wl::{normalized_kernel, vertex_features, SparseFeatures};
use iuad_graph::VertexId;
use iuad_mixture::Family;
use iuad_par::ParallelConfig;
use iuad_text::cosine_with_norms;

use crate::profile::{KeywordYears, ProfileContext, VenueCounts, VertexProfile};
use crate::scn::Scn;

/// Number of similarity functions.
pub const NUM_SIMILARITIES: usize = 6;

/// Distribution family per similarity (order γ₁..γ₆).
pub const FAMILIES: [Family; NUM_SIMILARITIES] = [
    Family::Gaussian,    // γ1 WL kernel ∈ [0,1]
    Family::Exponential, // γ2 clique coincidence ratio
    Family::Gaussian,    // γ3 interest cosine ∈ [-1,1]
    Family::Exponential, // γ4 time consistency
    Family::Exponential, // γ5 representative community
    Family::Exponential, // γ6 research communities (Adamic/Adar)
];

/// A γ-vector for one candidate pair.
pub type SimilarityVector = [f64; NUM_SIMILARITIES];

/// Which vertices to pre-cache structural features for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheScope {
    /// Only vertices of names with ≥ 2 vertices (all Stage-2 candidates).
    AmbiguousOnly,
    /// Every vertex (needed when arbitrary names can be queried, e.g. the
    /// incremental setting).
    All,
}

/// Per-vertex caches + the logic of γ₁..γ₆.
///
/// Owns its caches (no borrows), so it can live inside [`crate::Iuad`]
/// alongside the network it was built from; methods take the graph/context
/// by reference where needed.
///
/// The structural caches are index-addressed slabs parallel to `profiles`:
/// `wl[v] == None` / `tris[v] == None` means the vertex is out of cache
/// scope or was invalidated by [`SimilarityEngine::absorb`].
#[derive(Debug)]
pub struct SimilarityEngine {
    profiles: Vec<VertexProfile>,
    wl: Vec<Option<SparseFeatures>>,
    tris: Vec<Option<Vec<(u32, u32)>>>,
    /// Group-filtered pair evidence parallel to `profiles`; `None` falls
    /// back to the full per-vertex evidence (see [`JoinEvidence`]).
    join: Vec<Option<JoinEvidence>>,
    /// Members of each name group that holds join evidence, so `absorb`
    /// can invalidate a group in O(group) instead of scanning every
    /// profile. Entries are removed once invalidated.
    join_groups: rustc_hash::FxHashMap<iuad_corpus::NameId, Vec<VertexId>>,
    /// Keyword-centroid L2 norms parallel to `profiles`, hoisting γ₃'s
    /// self-norm passes out of the pairwise loop.
    cnorm: Vec<f64>,
    /// `e^{−α·gap}` for gaps `0..GAMMA4_TABLE_LEN` — γ₄'s decay factors,
    /// precomputed so the pairwise loop performs no `exp` calls for
    /// realistic year gaps.
    g4_exp: Vec<f64>,
    /// Decay factor α of γ₄ (paper: 0.62). Private: `g4_exp` is baked from
    /// it at construction, so post-build mutation would silently split γ₄
    /// between two decay rates.
    alpha: f64,
    /// WL refinement iterations h (and ego radius). Private: cached
    /// features were extracted at this radius.
    wl_iters: usize,
}

/// γ₄ decay factors precomputed for year gaps below this bound (five
/// centuries — any larger gap falls back to a direct `exp`).
const GAMMA4_TABLE_LEN: usize = 512;

/// Join-optimised evidence for one vertex: each component keeps only the
/// items (WL labels, triangles, keywords, venues) that occur in ≥ 2
/// vertices of the owner's *name group*. [`SimilarityEngine::similarity`]
/// only ever compares same-name vertices, and an item held by a single
/// member can never match inside the group — so same-name pair scores over
/// this evidence are bit-identical to the full per-vertex evidence while
/// scanning ~an order of magnitude fewer entries (Stage 1 kept same-name
/// vertices apart precisely because their evidence barely overlaps).
///
/// Ad-hoc queries ([`SimilarityEngine::similarity_against`]) must use the
/// full evidence: an external profile can match items this filter dropped.
#[derive(Debug)]
struct JoinEvidence {
    /// Filtered WL features with the *full* norm retained, so the
    /// normalised kernel still divides by the full self-kernels.
    wl: SparseFeatures,
    tris: Vec<(u32, u32)>,
    kw: KeywordYears,
    venues: VenueCounts,
}

/// Borrowed evidence for one side of a γ-vector evaluation: either a
/// vertex's [`JoinEvidence`] (cached same-name pair path) or its full
/// profile-backed evidence (fallback and ad-hoc paths).
struct Side<'a> {
    wl: Option<&'a SparseFeatures>,
    tris: &'a [(u32, u32)],
    kw: &'a KeywordYears,
    venues: &'a VenueCounts,
    profile: &'a VertexProfile,
    cnorm: f64,
}

impl SimilarityEngine {
    /// Build the engine, caching profiles for every vertex and structural
    /// features per `scope`. Fully sequential; see [`Self::build_parallel`].
    pub fn build(
        scn: &Scn,
        ctx: &ProfileContext,
        alpha: f64,
        wl_iters: usize,
        scope: CacheScope,
    ) -> Self {
        Self::build_parallel(
            scn,
            ctx,
            alpha,
            wl_iters,
            scope,
            &ParallelConfig::sequential(),
        )
    }

    /// Build the engine, fanning the per-vertex profile and structural
    /// feature extraction (the WL and triangle kernels — the O(n·deg²) hot
    /// path of engine construction) across `par.threads` workers. Every
    /// cached feature is a pure function of the network, so the result is
    /// identical at any thread count.
    pub fn build_parallel(
        scn: &Scn,
        ctx: &ProfileContext,
        alpha: f64,
        wl_iters: usize,
        scope: CacheScope,
        par: &ParallelConfig,
    ) -> Self {
        let verts: Vec<VertexId> = scn.graph.vertices().map(|(v, _)| v).collect();
        let profiles: Vec<VertexProfile> = iuad_par::parallel_map(par, &verts, |&v| {
            let payload = scn.graph.vertex(v);
            VertexProfile::from_mentions(payload.name, &payload.mentions, ctx)
        });

        let mut scoped: Vec<VertexId> = match scope {
            CacheScope::AmbiguousOnly => scn
                .by_name
                .values()
                .filter(|vs| vs.len() >= 2)
                .flatten()
                .copied()
                .collect(),
            CacheScope::All => verts,
        };
        scoped.sort_unstable();
        scoped.dedup();
        let features = iuad_par::parallel_map(par, &scoped, |&v| {
            (Self::wl_of(scn, v, wl_iters), Self::name_triangles(scn, v))
        });

        let mut wl: Vec<Option<SparseFeatures>> = vec![None; profiles.len()];
        let mut tris: Vec<Option<Vec<(u32, u32)>>> = vec![None; profiles.len()];
        for (&v, (w, t)) in scoped.iter().zip(features) {
            wl[v.index()] = Some(w);
            tris[v.index()] = Some(t);
        }
        // Build per-group [`JoinEvidence`] (see its docs for why this is
        // exact), fanned across workers — groups are independent.
        let groups: Vec<&[VertexId]> = scn
            .by_name
            .values()
            .filter(|vs| vs.len() >= 2)
            .map(Vec::as_slice)
            .collect();
        let group_evidence = iuad_par::parallel_map(par, &groups, |vs| {
            Self::group_join_evidence(vs, &wl, &tris, &profiles)
        });
        let mut join: Vec<Option<JoinEvidence>> = Vec::with_capacity(profiles.len());
        join.resize_with(profiles.len(), || None);
        let mut join_groups: rustc_hash::FxHashMap<iuad_corpus::NameId, Vec<VertexId>> =
            rustc_hash::FxHashMap::default();
        for (vs, evidence) in groups.iter().zip(group_evidence) {
            for (&v, e) in vs.iter().zip(evidence) {
                join[v.index()] = e;
            }
            if let Some(&v0) = vs.first() {
                join_groups.insert(profiles[v0.index()].name, vs.to_vec());
            }
        }
        let cnorm: Vec<f64> = profiles
            .iter()
            .map(|p| iuad_text::norm(&p.keyword_centroid))
            .collect();
        let g4_exp: Vec<f64> = (0..GAMMA4_TABLE_LEN)
            .map(|g| (-alpha * g as f64).exp())
            .collect();
        SimilarityEngine {
            profiles,
            wl,
            tris,
            join,
            join_groups,
            cnorm,
            g4_exp,
            alpha,
            wl_iters,
        }
    }

    /// [`JoinEvidence`] for every member of one name group, in `vs` order
    /// (`None` for members without cached structural features).
    fn group_join_evidence(
        vs: &[VertexId],
        wl: &[Option<SparseFeatures>],
        tris: &[Option<Vec<(u32, u32)>>],
        profiles: &[VertexProfile],
    ) -> Vec<Option<JoinEvidence>> {
        let mut label_count: rustc_hash::FxHashMap<u64, u32> = rustc_hash::FxHashMap::default();
        let mut tri_count: rustc_hash::FxHashMap<(u32, u32), u32> =
            rustc_hash::FxHashMap::default();
        let mut word_count: rustc_hash::FxHashMap<u32, u32> = rustc_hash::FxHashMap::default();
        let mut venue_count: rustc_hash::FxHashMap<u32, u32> = rustc_hash::FxHashMap::default();
        for &v in vs {
            if let Some(f) = &wl[v.index()] {
                for &l in f.labels() {
                    *label_count.entry(l).or_insert(0) += 1;
                }
            }
            if let Some(t) = &tris[v.index()] {
                // `name_triangles` dedups, so each triangle counts once per
                // member — count ≥ 2 really means "held by ≥ 2 vertices".
                for &t in t {
                    *tri_count.entry(t).or_insert(0) += 1;
                }
            }
            let p = &profiles[v.index()];
            for &w in p.keyword_years.words() {
                *word_count.entry(w).or_insert(0) += 1;
            }
            for &(h, _) in p.venue_counts.entries() {
                *venue_count.entry(h).or_insert(0) += 1;
            }
        }
        vs.iter()
            .map(|&v| {
                let (Some(f), Some(t)) = (&wl[v.index()], &tris[v.index()]) else {
                    return None;
                };
                let p = &profiles[v.index()];
                Some(JoinEvidence {
                    wl: f.filter_labels(|l| label_count[&l] >= 2),
                    tris: t.iter().copied().filter(|t| tri_count[t] >= 2).collect(),
                    kw: p.keyword_years.filter_words(|w| word_count[&w] >= 2),
                    venues: p.venue_counts.filter_venues(|h| venue_count[&h] >= 2),
                })
            })
            .collect()
    }

    /// The evidence [`Side`] of a vertex: the group-filtered
    /// [`JoinEvidence`] when present, the full per-vertex evidence
    /// otherwise.
    fn side(&self, v: VertexId) -> Side<'_> {
        let profile = &self.profiles[v.index()];
        let cnorm = self.cnorm[v.index()];
        match &self.join[v.index()] {
            Some(j) => Side {
                wl: Some(&j.wl),
                tris: &j.tris,
                kw: &j.kw,
                venues: &j.venues,
                profile,
                cnorm,
            },
            None => Side {
                wl: self.wl[v.index()].as_ref(),
                tris: self.tris[v.index()].as_deref().unwrap_or(&[]),
                kw: &profile.keyword_years,
                venues: &profile.venue_counts,
                profile,
                cnorm,
            },
        }
    }

    fn wl_of(scn: &Scn, v: VertexId, wl_iters: usize) -> SparseFeatures {
        vertex_features(&scn.graph, v, wl_iters, |w| {
            scn.graph.vertex(w).name.0 as u64
        })
    }

    /// Triangles through `v` as sorted co-member *name* pairs (names, not
    /// vertex ids, so that structurally parallel cliques coincide).
    fn name_triangles(scn: &Scn, v: VertexId) -> Vec<(u32, u32)> {
        let mut out: Vec<(u32, u32)> = triangles_of(&scn.graph, v)
            .into_iter()
            .map(|(x, y)| {
                let nx = scn.graph.vertex(x).name.0;
                let ny = scn.graph.vertex(y).name.0;
                (nx.min(ny), nx.max(ny))
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The cached profile of a vertex.
    pub fn profile(&self, v: VertexId) -> &VertexProfile {
        &self.profiles[v.index()]
    }

    /// γ₄'s decay factor α the engine was built with.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// WL refinement iterations (and ego radius) the caches were built at.
    pub fn wl_iters(&self) -> usize {
        self.wl_iters
    }

    /// Absorb a new mention's profile into the cache: merge into vertex
    /// `v`'s profile, or append when `v` is a vertex created after the
    /// engine was built. Structural caches (WL, triangles) for `v` are
    /// invalidated and recomputed lazily on the next query — consistent
    /// with the paper's no-retraining incremental semantics.
    pub fn absorb(&mut self, v: VertexId, delta: &VertexProfile) {
        if v.index() < self.profiles.len() {
            self.profiles[v.index()].merge(delta);
        } else {
            assert_eq!(
                v.index(),
                self.profiles.len(),
                "vertices must be absorbed in creation order"
            );
            self.profiles.push(delta.clone());
        }
        // Slabs stay parallel to `profiles`; a `None` slot is the lazy
        // invalidation marker.
        self.wl.resize(self.profiles.len(), None);
        self.tris.resize(self.profiles.len(), None);
        self.join.resize_with(self.profiles.len(), || None);
        self.cnorm.resize(self.profiles.len(), 0.0);
        self.wl[v.index()] = None;
        self.tris[v.index()] = None;
        self.cnorm[v.index()] = iuad_text::norm(&self.profiles[v.index()].keyword_centroid);
        // The group-filtered evidence basis of `v`'s whole name group is
        // stale: `v`'s new items could match items the filter dropped from
        // its peers. Drop the group to the exact full-evidence fallback
        // (O(group); the removed entry keeps repeat absorbs O(1)).
        let name = self.profiles[v.index()].name;
        if let Some(members) = self.join_groups.remove(&name) {
            for u in members {
                self.join[u.index()] = None;
            }
        }
    }

    /// γ-vector between two *same-name* vertices (both must be in cache
    /// scope; γ₁ is computed over the name group's shared label basis, so
    /// cross-name queries would see a zero kernel).
    pub fn similarity(&self, ctx: &ProfileContext, vi: VertexId, vj: VertexId) -> SimilarityVector {
        let si = self.side(vi);
        let sj = self.side(vj);
        let g1 = match (si.wl, sj.wl) {
            (Some(a), Some(b)) => normalized_kernel(a, b),
            _ => 0.0,
        };
        self.assemble(ctx, g1, &si, &sj)
    }

    /// γ-vectors for every unordered pair of `vs` (the `i < j` pairs of the
    /// slice, in nested-loop order) — the batch path Stage 2 uses per
    /// same-name candidate group.
    ///
    /// Produces bit-identical vectors to calling [`Self::similarity`] per
    /// pair, but computes all WL kernels of the group in one pass over an
    /// inverted label index: each vertex's feature list is scanned once per
    /// *group* instead of once per *pair*, which is the dominant Stage-2
    /// saving on heavily ambiguous names.
    pub fn similarity_block(&self, ctx: &ProfileContext, vs: &[VertexId]) -> Vec<SimilarityVector> {
        let k = vs.len();
        if k < 2 {
            return Vec::new();
        }
        let tri = |i: usize, j: usize| i * (2 * k - i - 1) / 2 + (j - i - 1);
        let mut dots = vec![0.0f64; k * (k - 1) / 2];
        let sides: Vec<Side<'_>> = vs.iter().map(|&v| self.side(v)).collect();
        // Inverted label index over the group: `head` maps a label to a
        // chain of (vertex slot, count) nodes in `arena` (`0` = end, node
        // ids offset by 1). Processing vertices in slice order and labels
        // in ascending order makes every pair's dot product accumulate in
        // ascending shared-label order — the merge join's exact sequence.
        let mut head: rustc_hash::FxHashMap<u64, u32> = rustc_hash::FxHashMap::default();
        let mut arena: Vec<(u32, u32, u32)> = Vec::new();
        for (j, s) in sides.iter().enumerate() {
            let Some(f) = s.wl else {
                continue;
            };
            for (l, c) in f.iter() {
                let slot = head.entry(l).or_insert(0);
                let mut cur = *slot;
                while cur != 0 {
                    let (i, ci, next) = arena[(cur - 1) as usize];
                    dots[tri(i as usize, j)] += f64::from(ci) * f64::from(c);
                    cur = next;
                }
                arena.push((j as u32, c, *slot));
                *slot = arena.len() as u32;
            }
        }

        let mut out = Vec::with_capacity(dots.len());
        for i in 0..k {
            for j in (i + 1)..k {
                let g1 = match (sides[i].wl, sides[j].wl) {
                    (Some(fa), Some(fb)) if fa.norm() != 0.0 && fb.norm() != 0.0 => {
                        (dots[tri(i, j)] / (fa.norm() * fb.norm())).clamp(0.0, 1.0)
                    }
                    _ => 0.0,
                };
                // Orient like `similarity(min, max)` does.
                let (lo, hi) = if vs[i] <= vs[j] { (i, j) } else { (j, i) };
                out.push(self.assemble(ctx, g1, &sides[lo], &sides[hi]));
            }
        }
        out
    }

    /// γ-vector between an ad-hoc profile (e.g. a new paper in the
    /// incremental setting) and an existing vertex. The caller supplies the
    /// ad-hoc side's WL features and name-level triangles; `scn` enables
    /// on-demand structural features for out-of-scope vertices.
    pub fn similarity_against(
        &self,
        scn: &Scn,
        ctx: &ProfileContext,
        new_profile: &VertexProfile,
        new_wl: &SparseFeatures,
        new_tris: &[(u32, u32)],
        vj: VertexId,
    ) -> SimilarityVector {
        let pj = &self.profiles[vj.index()];
        let g1 = match &self.wl[vj.index()] {
            Some(b) => normalized_kernel(new_wl, b),
            None => normalized_kernel(new_wl, &Self::wl_of(scn, vj, self.wl_iters)),
        };
        // Cached triangles are borrowed; only a cache miss materialises.
        // Both sides use *full* evidence: the ad-hoc profile is outside the
        // group basis the join filter was computed against.
        let computed;
        let tj: &[(u32, u32)] = match &self.tris[vj.index()] {
            Some(t) => t,
            None => {
                computed = Self::name_triangles(scn, vj);
                &computed
            }
        };
        let si = Side {
            wl: None,
            tris: new_tris,
            kw: &new_profile.keyword_years,
            venues: &new_profile.venue_counts,
            profile: new_profile,
            cnorm: iuad_text::norm(&new_profile.keyword_centroid),
        };
        let sj = Side {
            wl: None,
            tris: tj,
            kw: &pj.keyword_years,
            venues: &pj.venue_counts,
            profile: pj,
            cnorm: self.cnorm[vj.index()],
        };
        self.assemble(ctx, g1, &si, &sj)
    }

    /// Synthetic matched pair from splitting one vertex in half (§V-F2, the
    /// imbalance-correcting sampling strategy). Returns `None` for vertices
    /// with fewer than 4 papers.
    ///
    /// Structural approximation: both halves share the vertex's position in
    /// the network, so γ₁ is the self-kernel (1.0 when features exist) and
    /// γ₂ is the full clique overlap against the half-τ.
    pub fn synthetic_split_vector(
        &self,
        scn: &Scn,
        ctx: &ProfileContext,
        v: VertexId,
        rng: &mut impl rand::Rng,
    ) -> Option<SimilarityVector> {
        use rand::seq::SliceRandom;
        let mentions = &scn.graph.vertex(v).mentions;
        if mentions.len() < 4 {
            return None;
        }
        // Shuffle an index permutation, not the mention list: same rng
        // stream and same resulting halves, no payload clone.
        let mut idx: Vec<usize> = (0..mentions.len()).collect();
        idx.shuffle(rng);
        let (idx_a, idx_b) = idx.split_at(idx.len() / 2);
        let name = scn.graph.vertex(v).name;
        let pa = VertexProfile::from_mention_indices(name, mentions, idx_a, ctx);
        let pb = VertexProfile::from_mention_indices(name, mentions, idx_b, ctx);
        let wl_nonempty = self.wl[v.index()].as_ref().is_some_and(|f| !f.is_empty());
        let g1 = if wl_nonempty { 1.0 } else { 0.0 };
        // Both halves take the vertex's *full* triangle list (the split is
        // structural-identity by construction) and their own full ad-hoc
        // profile evidence.
        let t = self.tris[v.index()].as_deref().unwrap_or(&[]);
        fn side_of<'a>(p: &'a VertexProfile, t: &'a [(u32, u32)]) -> Side<'a> {
            Side {
                wl: None,
                tris: t,
                kw: &p.keyword_years,
                venues: &p.venue_counts,
                profile: p,
                cnorm: iuad_text::norm(&p.keyword_centroid),
            }
        }
        Some(self.assemble(ctx, g1, &side_of(&pa, t), &side_of(&pb, t)))
    }

    fn assemble(
        &self,
        ctx: &ProfileContext,
        g1: f64,
        si: &Side<'_>,
        sj: &Side<'_>,
    ) -> SimilarityVector {
        let tau = si.profile.num_papers().min(sj.profile.num_papers()).max(1) as f64;
        [
            g1,
            gamma2_cliques(si.tris, sj.tris, tau),
            cosine_with_norms(
                &si.profile.keyword_centroid,
                &sj.profile.keyword_centroid,
                si.cnorm,
                sj.cnorm,
            ),
            gamma4_join(si.kw, sj.kw, tau, ctx, |gap| {
                // Table hit for realistic gaps; identical bits either way.
                match self.g4_exp.get(usize::from(gap)) {
                    Some(&e) => e,
                    None => (-self.alpha * f64::from(gap)).exp(),
                }
            }),
            gamma5_counts(
                si.venues,
                si.profile.representative_venue,
                sj.venues,
                sj.profile.representative_venue,
                tau,
            ),
            gamma6_join(si.venues, sj.venues, tau, ctx),
        ]
    }

    /// WL features for a brand-new mention: a star of the paper's co-author
    /// names around the target name, refined `wl_iters` times. Lives here so
    /// the incremental path shares the label space (name ids) with cached
    /// features.
    pub fn star_features(&self, target: u32, coauthor_names: &[u32]) -> SparseFeatures {
        let mut g: iuad_graph::AdjGraph<u32, ()> = iuad_graph::AdjGraph::new();
        let center = g.add_vertex(target);
        for &n in coauthor_names {
            let leaf = g.add_vertex(n);
            g.upsert_edge(center, leaf, || (), |_| ());
        }
        vertex_features(&g, center, self.wl_iters, |v| *g.vertex(v) as u64)
    }
}

/// γ₂ (Equation 5): `|L(v_i) ∩ L(v_j)| / τ` over sorted name-pair triangles.
pub fn gamma2_cliques(a: &[(u32, u32)], b: &[(u32, u32)], tau: f64) -> f64 {
    let mut i = 0;
    let mut j = 0;
    let mut common = 0usize;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                common += 1;
                i += 1;
                j += 1;
            }
        }
    }
    common as f64 / tau
}

/// Smallest absolute difference between two ascending year lists, by
/// two-pointer scan — O(|a| + |b|) against the nested O(|a|·|b|) loop.
fn min_year_gap(a: &[u16], b: &[u16]) -> u16 {
    let mut i = 0;
    let mut j = 0;
    let mut best = u16::MAX;
    while i < a.len() && j < b.len() {
        let (ya, yb) = (a[i], b[j]);
        best = best.min(ya.abs_diff(yb));
        if best == 0 {
            return 0;
        }
        if ya <= yb {
            i += 1;
        } else {
            j += 1;
        }
    }
    best
}

/// γ₄ (Equation 7, with the decay sign fixed): over common keywords `b`,
/// `Σ e^{−α·min(b)} / ln F_B(b) / τ` where `min(b)` is the smallest year gap
/// between the two vertices' usages of `b`. Common keywords come from a
/// merge join over the keyword-sorted profiles.
pub fn gamma4_time_consistency(
    pi: &VertexProfile,
    pj: &VertexProfile,
    tau: f64,
    alpha: f64,
    ctx: &ProfileContext,
) -> f64 {
    gamma4_join(&pi.keyword_years, &pj.keyword_years, tau, ctx, |gap| {
        (-alpha * f64::from(gap)).exp()
    })
}

/// The γ₄ merge join with the decay factor abstracted: the engine supplies
/// a table lookup, the public entry point a direct `exp`.
#[inline]
fn gamma4_join(
    a: &KeywordYears,
    b: &KeywordYears,
    tau: f64,
    ctx: &ProfileContext,
    decay: impl Fn(u16) -> f64,
) -> f64 {
    let (wa, wb) = (a.words(), b.words());
    let mut i = 0;
    let mut j = 0;
    let mut sum = 0.0;
    while i < wa.len() && j < wb.len() {
        let (x, y) = (wa[i], wb[j]);
        if x == y {
            let min_gap = min_year_gap(a.years_at(i), b.years_at(j));
            sum += decay(min_gap) / ctx.word_ln_freq[x as usize];
            i += 1;
            j += 1;
        } else {
            // Branchless advance: exactly one side moves.
            i += usize::from(x < y);
            j += usize::from(y < x);
        }
    }
    sum / tau
}

/// γ₅ (Equation 8): cross-counts of each vertex's representative venue in
/// the other's venue multiset, over τ.
pub fn gamma5_representative(pi: &VertexProfile, pj: &VertexProfile, tau: f64) -> f64 {
    gamma5_counts(
        &pi.venue_counts,
        pi.representative_venue,
        &pj.venue_counts,
        pj.representative_venue,
        tau,
    )
}

/// γ₅ over explicit venue multisets (the engine passes group-filtered ones;
/// exact because a representative venue is always in its owner's multiset,
/// so a cross-count > 0 implies the venue is shared and survives the
/// filter).
fn gamma5_counts(
    venues_i: &VenueCounts,
    rep_i: Option<iuad_corpus::VenueId>,
    venues_j: &VenueCounts,
    rep_j: Option<iuad_corpus::VenueId>,
    tau: f64,
) -> f64 {
    let cnt = |counts: &VenueCounts, venue: Option<iuad_corpus::VenueId>| -> u32 {
        venue.map_or(0, |v| counts.count_of(v.0))
    };
    let c = cnt(venues_j, rep_i) + cnt(venues_i, rep_j);
    f64::from(c) / tau
}

/// γ₆ (Equation 9): Adamic/Adar over common venues, emphasising small
/// minority venues via `1 / ln F_H(h)`. Common venues come from a merge
/// join over the venue-sorted multisets.
pub fn gamma6_communities(
    pi: &VertexProfile,
    pj: &VertexProfile,
    tau: f64,
    ctx: &ProfileContext,
) -> f64 {
    gamma6_join(&pi.venue_counts, &pj.venue_counts, tau, ctx)
}

/// The γ₆ merge join over explicit venue multisets.
fn gamma6_join(va: &VenueCounts, vb: &VenueCounts, tau: f64, ctx: &ProfileContext) -> f64 {
    let a = va.entries();
    let b = vb.entries();
    let mut i = 0;
    let mut j = 0;
    let mut sum = 0.0;
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let h = a[i].0;
                // `get` guards venues unseen at context-build time (possible
                // in the incremental setting).
                sum += ctx
                    .venue_aa_weight
                    .get(h as usize)
                    .copied()
                    .unwrap_or_else(crate::profile::unseen_venue_aa_weight);
                i += 1;
                j += 1;
            }
        }
    }
    sum / tau
}

#[cfg(test)]
mod tests {
    use super::*;
    use iuad_corpus::{Corpus, CorpusConfig, NameId};
    use rustc_hash::FxHashMap;

    fn setup() -> (Corpus, Scn) {
        let c = Corpus::generate(&CorpusConfig {
            num_authors: 250,
            num_papers: 1000,
            seed: 23,
            ..Default::default()
        });
        let scn = Scn::build(&c, 2);
        (c, scn)
    }

    fn an_ambiguous_pair(scn: &Scn) -> (VertexId, VertexId) {
        let vs = scn
            .by_name
            .values()
            .find(|vs| vs.len() >= 2)
            .expect("ambiguous name exists");
        (vs[0], vs[1])
    }

    #[test]
    fn similarity_vector_is_finite_and_bounded() {
        let (c, scn) = setup();
        let ctx = ProfileContext::build(&c, 16, 2);
        let eng = SimilarityEngine::build(&scn, &ctx, 0.62, 2, CacheScope::AmbiguousOnly);
        let mut checked = 0;
        for vs in scn.by_name.values().filter(|vs| vs.len() >= 2).take(20) {
            for i in 0..vs.len().min(4) {
                for j in (i + 1)..vs.len().min(4) {
                    let g = eng.similarity(&ctx, vs[i], vs[j]);
                    for (k, &x) in g.iter().enumerate() {
                        assert!(x.is_finite(), "γ{} not finite", k + 1);
                    }
                    assert!((0.0..=1.0).contains(&g[0]), "γ1 out of range: {}", g[0]);
                    assert!((-1.0..=1.0).contains(&g[2]), "γ3 out of range: {}", g[2]);
                    for &k in &[1usize, 3, 4, 5] {
                        assert!(g[k] >= 0.0, "γ{} negative: {}", k + 1, g[k]);
                    }
                    checked += 1;
                }
            }
        }
        assert!(checked > 0, "no ambiguous pairs exercised");
    }

    #[test]
    fn similarity_is_symmetric() {
        let (c, scn) = setup();
        let ctx = ProfileContext::build(&c, 16, 2);
        let eng = SimilarityEngine::build(&scn, &ctx, 0.62, 2, CacheScope::AmbiguousOnly);
        let (vi, vj) = an_ambiguous_pair(&scn);
        let a = eng.similarity(&ctx, vi, vj);
        let b = eng.similarity(&ctx, vj, vi);
        for k in 0..NUM_SIMILARITIES {
            assert!(
                (a[k] - b[k]).abs() < 1e-12,
                "γ{} asymmetric: {} vs {}",
                k + 1,
                a[k],
                b[k]
            );
        }
    }

    #[test]
    fn same_author_vertices_more_similar_than_different() {
        // Average γ over true-match pairs should exceed non-match pairs on
        // at least the content features — the signal GCN relies on.
        let (c, scn) = setup();
        let ctx = ProfileContext::build(&c, 16, 2);
        let eng = SimilarityEngine::build(&scn, &ctx, 0.62, 2, CacheScope::AmbiguousOnly);
        let mut same = [0.0f64; NUM_SIMILARITIES];
        let mut diff = [0.0f64; NUM_SIMILARITIES];
        let mut n_same = 0usize;
        let mut n_diff = 0usize;
        for vs in scn.by_name.values().filter(|vs| vs.len() >= 2) {
            for i in 0..vs.len() {
                for j in (i + 1)..vs.len() {
                    let truth_i = majority_truth(&c, &scn, vs[i]);
                    let truth_j = majority_truth(&c, &scn, vs[j]);
                    let g = eng.similarity(&ctx, vs[i], vs[j]);
                    if truth_i == truth_j {
                        for k in 0..NUM_SIMILARITIES {
                            same[k] += g[k];
                        }
                        n_same += 1;
                    } else {
                        for k in 0..NUM_SIMILARITIES {
                            diff[k] += g[k];
                        }
                        n_diff += 1;
                    }
                }
            }
        }
        assert!(
            n_same > 5 && n_diff > 5,
            "insufficient pairs: {n_same}/{n_diff}"
        );
        let mean = |acc: &[f64; NUM_SIMILARITIES], n: usize| {
            let mut m = *acc;
            m.iter_mut().for_each(|x| *x /= n as f64);
            m
        };
        let ms = mean(&same, n_same);
        let md = mean(&diff, n_diff);
        // γ3 (interest cosine) and γ6 (venues) must separate on topical data.
        assert!(ms[2] > md[2], "γ3: same {:.3} vs diff {:.3}", ms[2], md[2]);
        assert!(ms[5] > md[5], "γ6: same {:.3} vs diff {:.3}", ms[5], md[5]);
    }

    fn majority_truth(c: &Corpus, scn: &Scn, v: VertexId) -> u32 {
        let mut counts: FxHashMap<u32, usize> = FxHashMap::default();
        for m in &scn.graph.vertex(v).mentions {
            *counts.entry(c.truth_of(*m).0).or_insert(0) += 1;
        }
        counts
            .into_iter()
            .max_by_key(|&(a, n)| (n, std::cmp::Reverse(a)))
            .map(|(a, _)| a)
            .unwrap()
    }

    #[test]
    fn gamma2_counts_shared_cliques() {
        let a = [(1, 2), (3, 4), (5, 6)];
        let b = [(3, 4), (5, 6), (7, 8)];
        assert_eq!(gamma2_cliques(&a, &b, 2.0), 1.0);
        assert_eq!(gamma2_cliques(&a, &[], 2.0), 0.0);
    }

    #[test]
    fn gamma4_decays_with_year_gap() {
        let (c, _) = setup();
        let ctx = ProfileContext::build(&c, 16, 2);
        let mk = |years: Vec<u16>| {
            let mut p = VertexProfile::from_mentions(NameId(0), &[], &ctx);
            p.keyword_years.insert(0, years);
            p.papers = vec![iuad_corpus::PaperId(0)];
            p
        };
        let base = mk(vec![2000]);
        let close = mk(vec![2001]);
        let far = mk(vec![2015]);
        let g_close = gamma4_time_consistency(&base, &close, 1.0, 0.62, &ctx);
        let g_far = gamma4_time_consistency(&base, &far, 1.0, 0.62, &ctx);
        assert!(g_close > g_far, "decay violated: {g_close} <= {g_far}");
    }

    #[test]
    fn min_year_gap_matches_nested_scan() {
        let cases: [(&[u16], &[u16]); 5] = [
            (&[2000], &[2010]),
            (&[1999, 2004, 2010], &[2002, 2003]),
            (&[1990, 2020], &[2000, 2001, 2002]),
            (&[2000, 2000], &[2000]),
            (&[1995], &[1990, 1996, 2005]),
        ];
        for (a, b) in cases {
            let brute = a
                .iter()
                .flat_map(|&x| b.iter().map(move |&y| x.abs_diff(y)))
                .min()
                .unwrap();
            assert_eq!(min_year_gap(a, b), brute, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn gamma5_counts_cross_representative_venues() {
        let (c, _) = setup();
        let ctx = ProfileContext::build(&c, 16, 2);
        let mut p1 = VertexProfile::from_mentions(NameId(0), &[], &ctx);
        let mut p2 = VertexProfile::from_mentions(NameId(0), &[], &ctx);
        p1.venue_counts.insert(3, 5);
        p1.representative_venue = Some(iuad_corpus::VenueId(3));
        p2.venue_counts.insert(3, 2);
        p2.representative_venue = Some(iuad_corpus::VenueId(3));
        // cnt(H2, rep1) + cnt(H1, rep2) = 2 + 5 = 7.
        assert_eq!(gamma5_representative(&p1, &p2, 1.0), 7.0);
    }

    #[test]
    fn gamma6_emphasises_rare_venues() {
        let (c, _) = setup();
        let ctx = ProfileContext::build(&c, 16, 2);
        let mut idx: Vec<usize> = (0..ctx.venue_freq.len()).collect();
        idx.sort_by_key(|&i| ctx.venue_freq[i]);
        let rare = idx[0] as u32;
        let common = *idx.last().unwrap() as u32;
        if ctx.venue_freq[rare as usize] == ctx.venue_freq[common as usize] {
            return; // degenerate corpus; nothing to compare
        }
        let mk = |venue: u32| {
            let mut p = VertexProfile::from_mentions(NameId(0), &[], &ctx);
            p.venue_counts.insert(venue, 1);
            p
        };
        let g_rare = gamma6_communities(&mk(rare), &mk(rare), 1.0, &ctx);
        let g_common = gamma6_communities(&mk(common), &mk(common), 1.0, &ctx);
        assert!(g_rare >= g_common);
    }

    #[test]
    fn synthetic_split_produces_high_similarity() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let (c, scn) = setup();
        let ctx = ProfileContext::build(&c, 16, 2);
        let eng = SimilarityEngine::build(&scn, &ctx, 0.62, 2, CacheScope::All);
        let mut rng = StdRng::seed_from_u64(3);
        // Pick a vertex with many papers.
        let big = scn
            .graph
            .vertices()
            .max_by_key(|(_, p)| p.mentions.len())
            .map(|(v, _)| v)
            .unwrap();
        let g = eng
            .synthetic_split_vector(&scn, &ctx, big, &mut rng)
            .expect("big vertex splittable");
        // A split of one real author should look strongly matched on
        // content: interests cosine near 1.
        assert!(g[2] > 0.5, "split halves should share interests: {g:?}");
    }

    #[test]
    fn split_requires_four_papers() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let (c, scn) = setup();
        let ctx = ProfileContext::build(&c, 16, 2);
        let eng = SimilarityEngine::build(&scn, &ctx, 0.62, 2, CacheScope::AmbiguousOnly);
        let mut rng = StdRng::seed_from_u64(3);
        let small = scn
            .graph
            .vertices()
            .find(|(_, p)| p.mentions.len() < 4)
            .map(|(v, _)| v)
            .unwrap();
        assert!(eng
            .synthetic_split_vector(&scn, &ctx, small, &mut rng)
            .is_none());
    }

    #[test]
    fn block_matches_per_pair_similarity_exactly() {
        let (c, scn) = setup();
        let ctx = ProfileContext::build(&c, 16, 2);
        let eng = SimilarityEngine::build(&scn, &ctx, 0.62, 2, CacheScope::AmbiguousOnly);
        let mut compared = 0usize;
        for vs in scn.by_name.values().filter(|vs| vs.len() >= 2) {
            let block = eng.similarity_block(&ctx, vs);
            let mut it = block.iter();
            for i in 0..vs.len() {
                for j in (i + 1)..vs.len() {
                    let per_pair = eng.similarity(&ctx, vs[i].min(vs[j]), vs[i].max(vs[j]));
                    // Bit-identical, not approximately equal: the batch
                    // path accumulates in the merge join's exact order.
                    assert_eq!(it.next().unwrap(), &per_pair, "pair {i},{j}");
                    compared += 1;
                }
            }
        }
        assert!(compared > 50, "too few pairs compared: {compared}");
    }

    #[test]
    fn absorb_drops_group_to_exact_full_evidence() {
        let (c, scn) = setup();
        let ctx = ProfileContext::build(&c, 16, 2);
        let mut eng = SimilarityEngine::build(&scn, &ctx, 0.62, 2, CacheScope::AmbiguousOnly);
        let vs = scn
            .by_name
            .values()
            .find(|vs| vs.len() >= 3)
            .expect("a 3+ group exists")
            .clone();
        let before: Vec<SimilarityVector> = vec![
            eng.similarity(&ctx, vs[0], vs[1]),
            eng.similarity(&ctx, vs[1], vs[2]),
        ];
        // Absorb a new paper's profile into vs[0]: its whole name group
        // falls back to full (unfiltered) evidence.
        let paper = &c.papers[0];
        let delta = VertexProfile::from_new_paper(scn.graph.vertex(vs[0]).name, paper, &ctx);
        eng.absorb(vs[0], &delta);
        // Pairs involving the absorbed vertex lose their structural cache…
        let touched = eng.similarity(&ctx, vs[0], vs[1]);
        assert_eq!(touched[0], 0.0, "γ1 must drop to 0 after invalidation");
        // …while pairs among untouched members are *bit-identical* on the
        // full-evidence fallback — the group filter never changed a value.
        let untouched = eng.similarity(&ctx, vs[1], vs[2]);
        assert_eq!(untouched, before[1]);
    }

    #[test]
    fn star_features_similar_for_shared_coauthors() {
        let (c, scn) = setup();
        let ctx = ProfileContext::build(&c, 16, 2);
        let eng = SimilarityEngine::build(&scn, &ctx, 0.62, 2, CacheScope::AmbiguousOnly);
        let f1 = eng.star_features(5, &[10, 11, 12]);
        let f2 = eng.star_features(5, &[10, 11, 12]);
        let f3 = eng.star_features(5, &[90, 91, 92]);
        assert!((normalized_kernel(&f1, &f2) - 1.0).abs() < 1e-12);
        assert!(normalized_kernel(&f1, &f3) < 1.0);
    }
}
