//! The six similarity functions of §V-B and their cached computation engine.
//!
//! | γ | What | Family |
//! |---|------|--------|
//! | γ₁ | normalised Weisfeiler-Lehman subgraph kernel | Gaussian |
//! | γ₂ | co-author clique (triangle) coincidence ratio | Exponential |
//! | γ₃ | cosine of keyword-embedding centroids | Gaussian |
//! | γ₄ | time consistency of research interests | Exponential |
//! | γ₅ | representative-community coincidence | Exponential |
//! | γ₆ | Adamic/Adar research-community similarity | Exponential |
//!
//! Families: bounded, symmetric-ish scores are modelled Gaussian; sparse
//! non-negative ratios are modelled Exponential (§V-C uses the exponential
//! family precisely so heterogeneous features can coexist in one
//! likelihood).
//!
//! γ₄ deviation: the paper writes `e^{α·min(b)}` with α = 0.62, citing the
//! FutureRank *decay* factor; a positive exponent rewards temporally distant
//! reuse, contradicting the stated intuition, so we implement the decay
//! `e^{−α·min(b)}` (see DESIGN.md).
//!
//! Hot-path layout: every per-pair input is a sorted slice — WL features
//! ([`SparseFeatures`]), name triangles, keyword years, venue counts — so
//! each γ is a two-pointer merge join over contiguous memory, and the
//! engine's caches are dense `Vec` slabs indexed by vertex id, so a
//! candidate-pair evaluation performs no hash lookups at all.

use iuad_graph::triangles::{triangles_of, triangles_of_csr};
use iuad_graph::wl::{normalized_kernel, vertex_features, vertex_features_csr, SparseFeatures};
use iuad_graph::{Csr, VertexId};
use iuad_mixture::Family;
use iuad_par::ParallelConfig;
use iuad_text::cosine_with_norms;

use crate::profile::{KeywordYears, ProfileContext, VenueCounts, VertexProfile};
use crate::scn::Scn;

/// Number of similarity functions.
pub const NUM_SIMILARITIES: usize = 6;

/// Distribution family per similarity (order γ₁..γ₆).
pub const FAMILIES: [Family; NUM_SIMILARITIES] = [
    Family::Gaussian,    // γ1 WL kernel ∈ [0,1]
    Family::Exponential, // γ2 clique coincidence ratio
    Family::Gaussian,    // γ3 interest cosine ∈ [-1,1]
    Family::Exponential, // γ4 time consistency
    Family::Exponential, // γ5 representative community
    Family::Exponential, // γ6 research communities (Adamic/Adar)
];

/// A γ-vector for one candidate pair.
pub type SimilarityVector = [f64; NUM_SIMILARITIES];

/// Which vertices to pre-cache structural features for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheScope {
    /// Only vertices of names with ≥ 2 vertices (all Stage-2 candidates).
    AmbiguousOnly,
    /// Every vertex (needed when arbitrary names can be queried, e.g. the
    /// incremental setting).
    All,
}

/// Per-vertex caches + the logic of γ₁..γ₆.
///
/// Owns its caches (no borrows), so it can live inside [`crate::Iuad`]
/// alongside the network it was built from; methods take the graph/context
/// by reference where needed.
///
/// The structural caches are index-addressed slabs parallel to `profiles`:
/// `wl[v] == None` / `tris[v] == None` means the vertex is out of cache
/// scope or was invalidated by [`SimilarityEngine::absorb`].
#[derive(Debug, Clone)]
pub struct SimilarityEngine {
    profiles: Vec<VertexProfile>,
    wl: Vec<Option<SparseFeatures>>,
    tris: Vec<Option<Vec<(u32, u32)>>>,
    /// Group-filtered pair evidence parallel to `profiles`; `None` falls
    /// back to the full per-vertex evidence (see [`JoinEvidence`]).
    join: Vec<Option<JoinEvidence>>,
    /// Members of each name group that holds join evidence, so `absorb`
    /// can invalidate a group in O(group) instead of scanning every
    /// profile. Entries are removed once invalidated.
    join_groups: rustc_hash::FxHashMap<iuad_corpus::NameId, Vec<VertexId>>,
    /// Keyword-centroid L2 norms parallel to `profiles`, hoisting γ₃'s
    /// self-norm passes out of the pairwise loop.
    cnorm: Vec<f64>,
    /// `e^{−α·gap}` for gaps `0..GAMMA4_TABLE_LEN` — γ₄'s decay factors,
    /// precomputed so the pairwise loop performs no `exp` calls for
    /// realistic year gaps.
    g4_exp: Vec<f64>,
    /// Decay factor α of γ₄ (paper: 0.62). Private: `g4_exp` is baked from
    /// it at construction, so post-build mutation would silently split γ₄
    /// between two decay rates.
    alpha: f64,
    /// WL refinement iterations h (and ego radius). Private: cached
    /// features were extracted at this radius.
    wl_iters: usize,
}

/// γ₄ decay factors precomputed for year gaps below this bound (five
/// centuries — any larger gap falls back to a direct `exp`).
const GAMMA4_TABLE_LEN: usize = 512;

/// Name groups below this size carry no [`JoinEvidence`]. A 2-vertex
/// group's filtered evidence is exactly its single pair's intersection, so
/// building it costs the full-evidence scan it would later save — zero net
/// win — while a k ≥ 3 group amortises one basis across k(k−1)/2 pairs.
/// Excluded pairs score over the full-evidence fallback, which the filter
/// is exact against by construction, so γ-vectors are unchanged.
const JOIN_EVIDENCE_MIN_GROUP: usize = 3;

/// Join-optimised evidence for one vertex: each component keeps only the
/// items (WL labels, triangles, keywords, venues) that occur in ≥ 2
/// vertices of the owner's *name group*. [`SimilarityEngine::similarity`]
/// only ever compares same-name vertices, and an item held by a single
/// member can never match inside the group — so same-name pair scores over
/// this evidence are bit-identical to the full per-vertex evidence while
/// scanning ~an order of magnitude fewer entries (Stage 1 kept same-name
/// vertices apart precisely because their evidence barely overlaps).
///
/// Ad-hoc queries ([`SimilarityEngine::similarity_against`]) must use the
/// full evidence: an external profile can match items this filter dropped.
#[derive(Debug, Clone)]
struct JoinEvidence {
    /// Filtered WL features with the *full* norm retained, so the
    /// normalised kernel still divides by the full self-kernels.
    wl: SparseFeatures,
    tris: Vec<(u32, u32)>,
    kw: KeywordYears,
    venues: VenueCounts,
}

/// Whole-graph BFS visit rank per vertex, so bulk per-vertex structural
/// extraction can walk the graph region by region instead of in vertex-id
/// order (which follows mention order, not topology).
fn bfs_rank(csr: &Csr) -> Vec<u32> {
    let n = csr.num_vertices();
    let mut rank = vec![u32::MAX; n];
    let mut order: Vec<VertexId> = Vec::with_capacity(n);
    for start in 0..n {
        if rank[start] != u32::MAX {
            continue;
        }
        rank[start] = order.len() as u32;
        order.push(VertexId::from(start));
        let mut head = order.len() - 1;
        while head < order.len() {
            let u = order[head];
            head += 1;
            for &w in csr.neighbors(u) {
                if rank[w.index()] == u32::MAX {
                    rank[w.index()] = order.len() as u32;
                    order.push(w);
                }
            }
        }
    }
    rank
}

/// Reorder `vertices` by [`bfs_rank`]. Extraction *order* only — every
/// cached feature is placed positionally by vertex id, so callers get
/// identical engines whatever the order here.
fn reorder_by_bfs(csr: &Csr, vertices: &mut [VertexId]) {
    let rank = bfs_rank(csr);
    vertices.sort_unstable_by_key(|v| rank[v.index()]);
}

/// Sorted items appearing more than once in a concatenation of
/// individually sorted, duplicate-free per-member lists — i.e. items held
/// by ≥ 2 group members, the join-evidence retention predicate.
fn shared<T: Ord + Copy>(items: impl Iterator<Item = T>) -> Vec<T> {
    let mut all: Vec<T> = items.collect();
    all.sort_unstable();
    shared_of_sorted(&all)
}

/// The ≥ 2-occurrences scan over an ascending multiset.
fn shared_of_sorted<T: Ord + Copy>(all: &[T]) -> Vec<T> {
    let mut out = Vec::new();
    for i in 1..all.len() {
        if all[i] == all[i - 1] && out.last() != Some(&all[i]) {
            out.push(all[i]);
        }
    }
    out
}

/// [`shared`] over member lists that are *individually sorted*: instead of
/// concatenating and re-sorting from scratch, merge the pre-sorted runs
/// bottom-up (⌈log₂ k⌉ linear passes — the dominant join-evidence cost on
/// groups whose members carry hundreds of WL labels each). A 2-list group
/// short-circuits to a plain intersection.
fn shared_sorted_lists<T: Ord + Copy>(lists: &[&[T]]) -> Vec<T> {
    match lists.len() {
        0 | 1 => Vec::new(),
        2 => intersect_sorted(lists[0], lists[1]),
        k if k <= 4 => {
            // Small groups: the union of pairwise intersections — each
            // join is a linear scan and the outputs are tiny (same-name
            // members share little evidence), so nothing the size of the
            // input is ever copied.
            let mut out: Vec<T> = Vec::new();
            for (i, a) in lists.iter().enumerate() {
                for b in &lists[i + 1..] {
                    let (mut p, mut q) = (0, 0);
                    while p < a.len() && q < b.len() {
                        match a[p].cmp(&b[q]) {
                            std::cmp::Ordering::Less => p += 1,
                            std::cmp::Ordering::Greater => q += 1,
                            std::cmp::Ordering::Equal => {
                                out.push(a[p]);
                                p += 1;
                                q += 1;
                            }
                        }
                    }
                }
            }
            out.sort_unstable();
            out.dedup();
            out
        }
        _ => {
            let merge = |a: &[T], b: &[T], out: &mut Vec<T>| {
                let (mut i, mut j) = (0, 0);
                while i < a.len() && j < b.len() {
                    if a[i] <= b[j] {
                        out.push(a[i]);
                        i += 1;
                    } else {
                        out.push(b[j]);
                        j += 1;
                    }
                }
                out.extend_from_slice(&a[i..]);
                out.extend_from_slice(&b[j..]);
            };
            let mut runs: Vec<Vec<T>> = Vec::with_capacity(lists.len().div_ceil(2));
            for pair in lists.chunks(2) {
                let mut run = Vec::with_capacity(pair.iter().map(|l| l.len()).sum());
                match pair {
                    [a, b] => merge(a, b, &mut run),
                    [a] => run.extend_from_slice(a),
                    _ => unreachable!(),
                }
                runs.push(run);
            }
            while runs.len() > 1 {
                let mut next: Vec<Vec<T>> = Vec::with_capacity(runs.len().div_ceil(2));
                let mut it = runs.into_iter();
                while let Some(a) = it.next() {
                    match it.next() {
                        Some(b) => {
                            let mut run = Vec::with_capacity(a.len() + b.len());
                            merge(&a, &b, &mut run);
                            next.push(run);
                        }
                        None => next.push(a),
                    }
                }
                runs = next;
            }
            shared_of_sorted(&runs[0])
        }
    }
}

/// The ascending intersection of `items` with `keep`, via the one shared
/// adaptive join ([`iuad_graph::wl::join_ascending`]) — near-free when the
/// shared set is empty, a frequent case for group evidence.
fn intersect_sorted<T: Ord + Copy>(items: &[T], keep: &[T]) -> Vec<T> {
    let mut out = Vec::new();
    iuad_graph::wl::join_ascending(items, keep, |i| out.push(items[i]));
    out
}

/// The WL-features + triangles halves of one member's [`JoinEvidence`]
/// (`None` when the member carries no structural caches).
type StructuralEvidence = Option<(SparseFeatures, Vec<(u32, u32)>)>;

/// Borrowed evidence for one side of a γ-vector evaluation: either a
/// vertex's [`JoinEvidence`] (cached same-name pair path) or its full
/// profile-backed evidence (fallback and ad-hoc paths).
struct Side<'a> {
    wl: Option<&'a SparseFeatures>,
    tris: &'a [(u32, u32)],
    kw: &'a KeywordYears,
    venues: &'a VenueCounts,
    profile: &'a VertexProfile,
    cnorm: f64,
}

impl SimilarityEngine {
    /// Build the engine, caching profiles for every vertex and structural
    /// features per `scope`. Fully sequential; see [`Self::build_parallel`].
    pub fn build(
        scn: &Scn,
        ctx: &ProfileContext,
        alpha: f64,
        wl_iters: usize,
        scope: CacheScope,
    ) -> Self {
        Self::build_parallel(
            scn,
            ctx,
            alpha,
            wl_iters,
            scope,
            &ParallelConfig::sequential(),
        )
    }

    /// Build the engine, fanning the per-vertex profile and structural
    /// feature extraction (the WL and triangle kernels — the O(n·deg²) hot
    /// path of engine construction) across `par.threads` workers. Every
    /// cached feature is a pure function of the network, so the result is
    /// identical at any thread count.
    pub fn build_parallel(
        scn: &Scn,
        ctx: &ProfileContext,
        alpha: f64,
        wl_iters: usize,
        scope: CacheScope,
        par: &ParallelConfig,
    ) -> Self {
        let verts: Vec<VertexId> = scn.graph.vertices().map(|(v, _)| v).collect();
        let profiles: Vec<VertexProfile> = iuad_par::parallel_map(par, &verts, |&v| {
            let payload = scn.graph.vertex(v);
            VertexProfile::from_mentions(payload.name, &payload.mentions, ctx)
        });

        let mut scoped: Vec<VertexId> = match scope {
            CacheScope::AmbiguousOnly => scn
                .by_name
                .values()
                .filter(|vs| vs.len() >= 2)
                .flatten()
                .copied()
                .collect(),
            CacheScope::All => verts,
        };
        scoped.sort_unstable();
        scoped.dedup();
        // Structural extraction walks a frozen CSR snapshot: sorted
        // contiguous neighbour slices instead of per-vertex hash maps — the
        // layout that matters on scale-free hubs, where WL balls and
        // triangle intersections concentrate.
        let csr = scn.csr();
        let names: Vec<u64> = scn
            .graph
            .vertices()
            .map(|(_, p)| u64::from(p.name.0))
            .collect();
        // Extract region by region (see [`reorder_by_bfs`]); placement
        // below is positional against the same reordered list.
        reorder_by_bfs(&csr, &mut scoped);
        let features = iuad_par::parallel_map(par, &scoped, |&v| {
            (
                Self::wl_of_csr(&csr, &names, v, wl_iters),
                Self::name_triangles_csr(&csr, scn, v),
            )
        });

        let mut wl: Vec<Option<SparseFeatures>> = vec![None; profiles.len()];
        let mut tris: Vec<Option<Vec<(u32, u32)>>> = vec![None; profiles.len()];
        for (&v, (w, t)) in scoped.iter().zip(features) {
            wl[v.index()] = Some(w);
            tris[v.index()] = Some(t);
        }
        // Build per-group [`JoinEvidence`] (see its docs for why this is
        // exact), fanned across workers — groups are independent. Groups
        // of 2 are skipped (see [`JOIN_EVIDENCE_MIN_GROUP`]).
        let groups: Vec<&[VertexId]> = scn
            .by_name
            .values()
            .filter(|vs| vs.len() >= JOIN_EVIDENCE_MIN_GROUP)
            .map(Vec::as_slice)
            .collect();
        let group_evidence = iuad_par::parallel_map(par, &groups, |vs| {
            Self::group_join_evidence(vs, &wl, &tris, &profiles)
        });
        let mut join: Vec<Option<JoinEvidence>> = Vec::with_capacity(profiles.len());
        join.resize_with(profiles.len(), || None);
        let mut join_groups: rustc_hash::FxHashMap<iuad_corpus::NameId, Vec<VertexId>> =
            rustc_hash::FxHashMap::default();
        for (vs, evidence) in groups.iter().zip(group_evidence) {
            for (&v, e) in vs.iter().zip(evidence) {
                join[v.index()] = e;
            }
            if let Some(&v0) = vs.first() {
                join_groups.insert(profiles[v0.index()].name, vs.to_vec());
            }
        }
        let cnorm: Vec<f64> = profiles
            .iter()
            .map(|p| iuad_text::norm(&p.keyword_centroid))
            .collect();
        let g4_exp: Vec<f64> = (0..GAMMA4_TABLE_LEN)
            .map(|g| (-alpha * g as f64).exp())
            .collect();
        SimilarityEngine {
            profiles,
            wl,
            tris,
            join,
            join_groups,
            cnorm,
            g4_exp,
            alpha,
            wl_iters,
        }
    }

    /// [`Self::build_parallel`] with the per-vertex cache construction
    /// sharded across the contiguous name blocks of `plan`, one `iuad-par`
    /// job per block. Bit-identical to the monolithic build: every cached
    /// feature is a pure function of `(scn, ctx)` for its own vertex (or
    /// its own name group, which a block contains whole), and placement
    /// into the engine's slabs is positional by global vertex id — block
    /// boundaries change only which worker computes a value, never the
    /// value or where it lands.
    pub fn build_sharded(
        scn: &Scn,
        ctx: &ProfileContext,
        alpha: f64,
        wl_iters: usize,
        scope: CacheScope,
        plan: &crate::shard::ShardPlan,
        par: &ParallelConfig,
    ) -> Self {
        let verts: Vec<VertexId> = scn.graph.vertices().map(|(v, _)| v).collect();
        let profiles: Vec<VertexProfile> = iuad_par::parallel_map(par, &verts, |&v| {
            let payload = scn.graph.vertex(v);
            VertexProfile::from_mentions(payload.name, &payload.mentions, ctx)
        });

        let csr = scn.csr();
        let names: Vec<u64> = scn
            .graph
            .vertices()
            .map(|(_, p)| u64::from(p.name.0))
            .collect();
        let rank = bfs_rank(&csr);

        // Phase A: per-block structural feature extraction. A block's
        // scoped set is exactly the monolith's scoped set restricted to
        // the block's names, so the union over blocks is the monolith's.
        let feature_jobs: Vec<_> = plan
            .blocks()
            .map(|(lo, hi)| {
                let (csr, names, rank) = (&csr, &names, &rank);
                move || {
                    let mut scoped: Vec<VertexId> = scn
                        .by_name
                        .iter()
                        .filter(|(n, vs)| {
                            n.0 >= lo && n.0 < hi && (scope == CacheScope::All || vs.len() >= 2)
                        })
                        .flat_map(|(_, vs)| vs.iter().copied())
                        .collect();
                    scoped.sort_unstable();
                    scoped.dedup();
                    scoped.sort_unstable_by_key(|v| rank[v.index()]);
                    let features: Vec<_> = scoped
                        .iter()
                        .map(|&v| {
                            (
                                Self::wl_of_csr(csr, names, v, wl_iters),
                                Self::name_triangles_csr(csr, scn, v),
                            )
                        })
                        .collect();
                    (scoped, features)
                }
            })
            .collect();
        let mut wl: Vec<Option<SparseFeatures>> = vec![None; profiles.len()];
        let mut tris: Vec<Option<Vec<(u32, u32)>>> = vec![None; profiles.len()];
        for (scoped, features) in iuad_par::parallel_jobs(par, feature_jobs) {
            for (&v, (w, t)) in scoped.iter().zip(features) {
                wl[v.index()] = Some(w);
                tris[v.index()] = Some(t);
            }
        }

        // Phase B: per-block group join evidence over the filled slabs.
        // Name groups never straddle a block boundary, so each job reads
        // and produces evidence for whole groups only.
        let evidence_jobs: Vec<_> = plan
            .blocks()
            .map(|(lo, hi)| {
                let (wl, tris, profiles) = (&wl, &tris, &profiles);
                move || {
                    let groups: Vec<&[VertexId]> = scn
                        .by_name
                        .iter()
                        .filter(|(n, vs)| {
                            n.0 >= lo && n.0 < hi && vs.len() >= JOIN_EVIDENCE_MIN_GROUP
                        })
                        .map(|(_, vs)| vs.as_slice())
                        .collect();
                    let evidence: Vec<_> = groups
                        .iter()
                        .map(|vs| Self::group_join_evidence(vs, wl, tris, profiles))
                        .collect();
                    (groups, evidence)
                }
            })
            .collect();
        let mut join: Vec<Option<JoinEvidence>> = Vec::with_capacity(profiles.len());
        join.resize_with(profiles.len(), || None);
        let mut join_groups: rustc_hash::FxHashMap<iuad_corpus::NameId, Vec<VertexId>> =
            rustc_hash::FxHashMap::default();
        for (groups, group_evidence) in iuad_par::parallel_jobs(par, evidence_jobs) {
            for (vs, evidence) in groups.iter().zip(group_evidence) {
                for (&v, e) in vs.iter().zip(evidence) {
                    join[v.index()] = e;
                }
                if let Some(&v0) = vs.first() {
                    join_groups.insert(profiles[v0.index()].name, vs.to_vec());
                }
            }
        }

        let cnorm: Vec<f64> = profiles
            .iter()
            .map(|p| iuad_text::norm(&p.keyword_centroid))
            .collect();
        let g4_exp: Vec<f64> = (0..GAMMA4_TABLE_LEN)
            .map(|g| (-alpha * g as f64).exp())
            .collect();
        SimilarityEngine {
            profiles,
            wl,
            tris,
            join,
            join_groups,
            cnorm,
            g4_exp,
            alpha,
            wl_iters,
        }
    }

    /// [`JoinEvidence`] for every member of one name group, in `vs` order
    /// (`None` for members without cached structural features).
    ///
    /// Every per-member item list (WL labels, triangles, keywords, venues)
    /// is already sorted and duplicate-free, so "occurs in ≥ 2 members" is
    /// computed by concatenate-sort-scan instead of hash counting, and each
    /// member filters against the shared sorted set with an advancing
    /// cursor — no hash map touches the evidence path.
    fn group_join_evidence(
        vs: &[VertexId],
        wl: &[Option<SparseFeatures>],
        tris: &[Option<Vec<(u32, u32)>>],
        profiles: &[VertexProfile],
    ) -> Vec<Option<JoinEvidence>> {
        let structural = Self::group_structural_evidence(vs, wl, tris);
        let (shared_words, shared_venues) = Self::group_shared_profile_items(vs, profiles);

        vs.iter()
            .zip(structural)
            .map(|(&v, st)| {
                let (wl, tris) = st?;
                let p = &profiles[v.index()];
                Some(JoinEvidence {
                    wl,
                    tris,
                    kw: p.keyword_years.intersect_words(&shared_words),
                    venues: p.venue_counts.intersect_venues(&shared_venues),
                })
            })
            .collect()
    }

    /// The structural (WL + triangle) halves of one group's join evidence,
    /// in `vs` order (`None` for members without cached features). Split
    /// out so [`Self::derive`] can rebuild just these for groups whose
    /// members changed structurally but not profile-wise.
    fn group_structural_evidence(
        vs: &[VertexId],
        wl: &[Option<SparseFeatures>],
        tris: &[Option<Vec<(u32, u32)>>],
    ) -> Vec<StructuralEvidence> {
        let label_lists: Vec<&[u64]> = vs
            .iter()
            .filter_map(|&v| wl[v.index()].as_ref())
            .map(SparseFeatures::labels)
            .collect();
        let shared_labels: Vec<u64> = shared_sorted_lists(&label_lists);
        // `name_triangles` dedups, so each triangle occurs once per member
        // — a shared-set hit really means "held by ≥ 2 vertices".
        let tri_lists: Vec<&[(u32, u32)]> = vs
            .iter()
            .filter_map(|&v| tris[v.index()].as_deref())
            .collect();
        let shared_tris: Vec<(u32, u32)> = shared_sorted_lists(&tri_lists);
        vs.iter()
            .map(|&v| {
                let (Some(f), Some(t)) = (&wl[v.index()], &tris[v.index()]) else {
                    return None;
                };
                Some((
                    f.intersect_labels(&shared_labels),
                    intersect_sorted(t, &shared_tris),
                ))
            })
            .collect()
    }

    /// The group-shared keyword and venue sets — the profile-derived half
    /// of the join-evidence basis, a pure function of member profiles.
    fn group_shared_profile_items(
        vs: &[VertexId],
        profiles: &[VertexProfile],
    ) -> (Vec<u32>, Vec<u32>) {
        let word_lists: Vec<&[u32]> = vs
            .iter()
            .map(|&v| profiles[v.index()].keyword_years.words())
            .collect();
        let shared_words: Vec<u32> = shared_sorted_lists(&word_lists);
        // Venue lists are tiny; the flat concat-sort path suffices.
        let shared_venues: Vec<u32> = shared(
            vs.iter()
                .flat_map(|&v| profiles[v.index()].venue_counts.entries().iter())
                .map(|&(h, _)| h),
        );
        (shared_words, shared_venues)
    }

    /// Derive the engine for a merged `network` from the engine `old`
    /// built over its pre-merge SCN, per `plan` — the §V-E "no retraining"
    /// claim applied to the engine itself: post-merge state is carried
    /// over, not recomputed, wherever the merge provably could not have
    /// changed it. The result is bit-identical to
    /// [`Self::build_parallel`] over `network` (asserted in debug builds
    /// by [`crate::Iuad::fit`] and per scenario by the conformance
    /// harness's `derive-matches-rebuild` invariant).
    ///
    /// What carries over and why it is exact:
    ///
    /// * **Profiles** of non-coalesced vertices: their mention set is
    ///   unchanged (merging only coalesces clusters), so the profile —
    ///   a pure function of the mentions — is cloned by index remap.
    ///   Coalesced vertices are rebuilt exactly via
    ///   [`VertexProfile::from_mentions`] (not [`VertexProfile::merge`],
    ///   whose mass-weighted centroid average would drift f32 bits).
    /// * **WL features and triangles** of *clean* vertices: both are pure
    ///   functions of the `wl_iters`-hop ball (names + structure), and a
    ///   ball containing no coalesced vertex is name-preservingly
    ///   isomorphic to its pre-merge image — any structural change (edge
    ///   rewiring, shortcut, collapsed parallel edge) passes through a
    ///   coalesced vertex. The dirty region is therefore the
    ///   `max(wl_iters, 1)`-hop ball around the coalesced set (radius ≥ 1
    ///   because triangles read the 1-hop induced subgraph), and only
    ///   dirty in-scope vertices are recomputed.
    /// * **Join evidence** of a name group: a pure function of the group
    ///   members' profiles and structural caches, carried over when every
    ///   member is clean and non-coalesced (then the group membership maps
    ///   bijectively — merges stay within a name group). Groups whose
    ///   members changed *structurally only* (dirty but none coalesced)
    ///   carry the profile-derived halves (keywords, venues) and rebuild
    ///   just the WL/triangle halves; groups with a coalesced member
    ///   rebuild in full.
    ///
    /// Takes `old` by value: carried state *moves* into the new engine
    /// (every old vertex has at most one non-coalesced image, so each slab
    /// entry is consumed at most once) — the untouched majority costs an
    /// index remap, not a deep copy.
    ///
    /// `old` must be freshly built (no [`Self::absorb`] calls) — absorbed
    /// profiles are merged, not rebuilt, and would not match a from-scratch
    /// profile bit for bit — *unless* every absorbed-into vertex is listed
    /// in `plan.coalesced` (e.g. via [`crate::MergePlan::refresh`]): then
    /// the merged profiles are discarded and rebuilt exactly, absorbed
    /// vertices' invalidated caches fall inside the dirty region (absorb
    /// adds no graph edges, so clean balls are untouched), and the
    /// join groups absorb invalidated rebuild in full — restoring the
    /// bit-identity contract on a live, absorbed-into engine. This is the
    /// serving tier's epoch-publish path.
    pub fn derive(
        old: SimilarityEngine,
        plan: &crate::gcn::MergePlan,
        network: &Scn,
        ctx: &ProfileContext,
        scope: CacheScope,
        par: &ParallelConfig,
    ) -> SimilarityEngine {
        let n_new = network.graph.num_vertices();
        assert_eq!(plan.old_to_new.len(), old.profiles.len());
        let SimilarityEngine {
            profiles: old_profiles,
            wl: mut old_wl,
            tris: mut old_tris,
            join: mut old_join,
            cnorm: old_cnorm,
            g4_exp,
            alpha,
            wl_iters,
            join_groups: _,
        } = old;
        // Representative old preimage + preimage count per new vertex. All
        // representatives are distinct (a non-coalesced vertex has exactly
        // one preimage; a coalesced vertex's representative maps only to
        // it), so taking a representative's slab entries never races
        // another new vertex.
        let mut pre_count = vec![0u32; n_new];
        let mut pre_of = vec![usize::MAX; n_new];
        for (old_idx, &nv) in plan.old_to_new.iter().enumerate() {
            pre_count[nv.index()] += 1;
            if pre_of[nv.index()] == usize::MAX {
                pre_of[nv.index()] = old_idx;
            }
        }
        debug_assert!(pre_of.iter().all(|&p| p != usize::MAX), "plan not total");

        // --- Profiles: remap untouched, rebuild coalesced exactly --------
        let rebuilt = iuad_par::parallel_map(par, &plan.coalesced, |&v| {
            let payload = network.graph.vertex(v);
            VertexProfile::from_mentions(payload.name, &payload.mentions, ctx)
        });
        let mut old_profiles = old_profiles;
        let hollow = || VertexProfile {
            name: iuad_corpus::NameId(0),
            papers: Vec::new(),
            keyword_years: KeywordYears::default(),
            venue_counts: VenueCounts::default(),
            representative_venue: None,
            keyword_centroid: Vec::new(),
        };
        // Representatives are distinct, so each old slot is vacated once.
        let mut profiles: Vec<VertexProfile> = (0..n_new)
            .map(|i| std::mem::replace(&mut old_profiles[pre_of[i]], hollow()))
            .collect();
        let mut cnorm: Vec<f64> = (0..n_new).map(|i| old_cnorm[pre_of[i]]).collect();
        for (&v, p) in plan.coalesced.iter().zip(rebuilt) {
            cnorm[v.index()] = iuad_text::norm(&p.keyword_centroid);
            profiles[v.index()] = p;
        }
        // --- Dirty regions: the structural blast radius of the merge -----
        // WL features read the `wl_iters`-hop ball; triangles read only
        // the 1-hop induced subgraph — tracking them separately lets a
        // vertex whose 2-hop ball was touched but whose neighbourhood was
        // not keep its triangle list.
        let csr = network.csr();
        let mut dirty_wl = vec![false; n_new];
        csr.mark_ball(&plan.coalesced, wl_iters, &mut dirty_wl);
        let mut dirty_tri = vec![false; n_new];
        csr.mark_ball(&plan.coalesced, 1, &mut dirty_tri);
        let dirty = |i: usize| dirty_wl[i] || dirty_tri[i];

        // --- Structural caches: carry clean, recompute dirty -------------
        let mut scoped: Vec<VertexId> = match scope {
            CacheScope::AmbiguousOnly => network
                .by_name
                .values()
                .filter(|vs| vs.len() >= 2)
                .flatten()
                .copied()
                .collect(),
            CacheScope::All => (0..n_new).map(VertexId::from).collect(),
        };
        scoped.sort_unstable();
        scoped.dedup();
        let mut wl: Vec<Option<SparseFeatures>> = vec![None; n_new];
        let mut tris: Vec<Option<Vec<(u32, u32)>>> = vec![None; n_new];
        let mut wl_recompute: Vec<VertexId> = Vec::new();
        let mut tri_recompute: Vec<VertexId> = Vec::new();
        for &v in &scoped {
            let i = v.index();
            // Clean ⇒ non-coalesced ⇒ a unique preimage; its cache can
            // still be absent if the old scope was narrower.
            if !dirty_wl[i] && old_wl[pre_of[i]].is_some() {
                wl[i] = old_wl[pre_of[i]].take();
            } else {
                wl_recompute.push(v);
            }
            if !dirty_tri[i] && old_tris[pre_of[i]].is_some() {
                tris[i] = old_tris[pre_of[i]].take();
            } else {
                tri_recompute.push(v);
            }
        }
        let names: Vec<u64> = network
            .graph
            .vertices()
            .map(|(_, p)| u64::from(p.name.0))
            .collect();
        // Extract in graph-BFS order: consecutive roots share most of
        // their balls, so the rows and position map stay cache-hot.
        // Features are pure per root, so ordering cannot change results.
        reorder_by_bfs(&csr, &mut wl_recompute);
        let fresh_wl = iuad_par::parallel_map(par, &wl_recompute, |&v| {
            Self::wl_of_csr(&csr, &names, v, wl_iters)
        });
        for (&v, w) in wl_recompute.iter().zip(fresh_wl) {
            wl[v.index()] = Some(w);
        }
        let fresh_tris = iuad_par::parallel_map(par, &tri_recompute, |&v| {
            Self::name_triangles_csr(&csr, network, v)
        });
        for (&v, t) in tri_recompute.iter().zip(fresh_tris) {
            tris[v.index()] = Some(t);
        }

        // --- Join evidence: carry what provably did not change -----------
        let groups: Vec<&[VertexId]> = network
            .by_name
            .values()
            .filter(|vs| vs.len() >= JOIN_EVIDENCE_MIN_GROUP)
            .map(Vec::as_slice)
            .collect();
        let mut join: Vec<Option<JoinEvidence>> = Vec::with_capacity(n_new);
        join.resize_with(n_new, || None);
        let mut join_groups: rustc_hash::FxHashMap<iuad_corpus::NameId, Vec<VertexId>> =
            rustc_hash::FxHashMap::default();
        // Groups with a coalesced member rebuild in full; groups that are
        // only structurally dirty rebuild the WL/triangle halves and carry
        // the profile halves; fully clean groups move over wholesale.
        let mut full_groups: Vec<&[VertexId]> = Vec::new();
        let mut structural_groups: Vec<&[VertexId]> = Vec::new();
        for vs in &groups {
            if let Some(&v0) = vs.first() {
                join_groups.insert(profiles[v0.index()].name, vs.to_vec());
            }
            let carried = vs
                .iter()
                .all(|&v| pre_count[v.index()] == 1 && old_join[pre_of[v.index()]].is_some());
            if !carried {
                full_groups.push(vs);
            } else if vs.iter().any(|&v| dirty(v.index())) {
                structural_groups.push(vs);
            } else {
                for &v in *vs {
                    join[v.index()] = old_join[pre_of[v.index()]].take();
                }
            }
        }
        let full_evidence = iuad_par::parallel_map(par, &full_groups, |vs| {
            Self::group_join_evidence(vs, &wl, &tris, &profiles)
        });
        for (vs, evidence) in full_groups.iter().zip(full_evidence) {
            for (&v, e) in vs.iter().zip(evidence) {
                join[v.index()] = e;
            }
        }
        let structural_evidence = iuad_par::parallel_map(par, &structural_groups, |vs| {
            Self::group_structural_evidence(vs, &wl, &tris)
        });
        for (vs, evidence) in structural_groups.iter().zip(structural_evidence) {
            for (&v, st) in vs.iter().zip(evidence) {
                // The profile halves are pure functions of member profiles,
                // all unchanged in this group — move them from the old
                // evidence; a member without structural caches degrades to
                // the full-evidence fallback exactly as a rebuild would.
                join[v.index()] = st.and_then(|(wl_f, tris_f)| {
                    let old_e = old_join[pre_of[v.index()]].take()?;
                    Some(JoinEvidence {
                        wl: wl_f,
                        tris: tris_f,
                        kw: old_e.kw,
                        venues: old_e.venues,
                    })
                });
            }
        }
        SimilarityEngine {
            profiles,
            wl,
            tris,
            join,
            join_groups,
            cnorm,
            g4_exp,
            alpha,
            wl_iters,
        }
    }

    /// First difference between two engines' cached state, or `None` when
    /// they are bit-identical — the checkable face of the
    /// derive-vs-rebuild contract. Floats compare by bit pattern, not
    /// tolerance: derivation carries state over *because* it is provably
    /// unchanged, so any drift is a correctness bug, not rounding.
    pub fn diff_from(&self, other: &SimilarityEngine) -> Option<String> {
        fn sparse_eq(a: &SparseFeatures, b: &SparseFeatures) -> bool {
            a == b && a.norm().to_bits() == b.norm().to_bits()
        }
        if self.profiles.len() != other.profiles.len() {
            return Some(format!(
                "vertex counts differ: {} vs {}",
                self.profiles.len(),
                other.profiles.len()
            ));
        }
        if self.alpha.to_bits() != other.alpha.to_bits()
            || self.wl_iters != other.wl_iters
            || self.g4_exp.len() != other.g4_exp.len()
            || self
                .g4_exp
                .iter()
                .zip(&other.g4_exp)
                .any(|(a, b)| a.to_bits() != b.to_bits())
        {
            return Some("engine parameters (α, h, decay table) differ".to_string());
        }
        for i in 0..self.profiles.len() {
            if self.profiles[i] != other.profiles[i] {
                return Some(format!("profile differs at vertex {i}"));
            }
            if self.cnorm[i].to_bits() != other.cnorm[i].to_bits() {
                return Some(format!("centroid norm differs at vertex {i}"));
            }
            let wl_eq = match (&self.wl[i], &other.wl[i]) {
                (Some(a), Some(b)) => sparse_eq(a, b),
                (None, None) => true,
                _ => false,
            };
            if !wl_eq {
                return Some(format!("WL features differ at vertex {i}"));
            }
            if self.tris[i] != other.tris[i] {
                return Some(format!("triangles differ at vertex {i}"));
            }
            let join_eq = match (&self.join[i], &other.join[i]) {
                (Some(a), Some(b)) => {
                    sparse_eq(&a.wl, &b.wl)
                        && a.tris == b.tris
                        && a.kw == b.kw
                        && a.venues == b.venues
                }
                (None, None) => true,
                _ => false,
            };
            if !join_eq {
                return Some(format!("join evidence differs at vertex {i}"));
            }
        }
        if self.join_groups != other.join_groups {
            return Some("join-group membership differs".to_string());
        }
        None
    }

    /// The evidence [`Side`] of a vertex: the group-filtered
    /// [`JoinEvidence`] when present, the full per-vertex evidence
    /// otherwise.
    fn side(&self, v: VertexId) -> Side<'_> {
        let profile = &self.profiles[v.index()];
        let cnorm = self.cnorm[v.index()];
        match &self.join[v.index()] {
            Some(j) => Side {
                wl: Some(&j.wl),
                tris: &j.tris,
                kw: &j.kw,
                venues: &j.venues,
                profile,
                cnorm,
            },
            None => Side {
                wl: self.wl[v.index()].as_ref(),
                tris: self.tris[v.index()].as_deref().unwrap_or(&[]),
                kw: &profile.keyword_years,
                venues: &profile.venue_counts,
                profile,
                cnorm,
            },
        }
    }

    /// WL features via the graph's hash adjacency — the ad-hoc path for
    /// single cache misses, where freezing a CSR snapshot would cost more
    /// than the query. Bit-identical to [`Self::wl_of_csr`].
    fn wl_of(scn: &Scn, v: VertexId, wl_iters: usize) -> SparseFeatures {
        vertex_features(&scn.graph, v, wl_iters, |w| {
            scn.graph.vertex(w).name.0 as u64
        })
    }

    /// WL features via a frozen [`Csr`] snapshot — the bulk engine-build
    /// path. `names` is the per-vertex name-label slab (one contiguous
    /// lookup instead of a payload dereference per ball member).
    fn wl_of_csr(csr: &Csr, names: &[u64], v: VertexId, wl_iters: usize) -> SparseFeatures {
        vertex_features_csr(csr, v, wl_iters, |w| names[w.index()])
    }

    /// Triangles through `v` as sorted co-member *name* pairs (names, not
    /// vertex ids, so that structurally parallel cliques coincide). Hash
    /// adjacency; the single-miss counterpart of
    /// [`Self::name_triangles_csr`].
    fn name_triangles(scn: &Scn, v: VertexId) -> Vec<(u32, u32)> {
        Self::to_name_pairs(scn, triangles_of(&scn.graph, v))
    }

    /// [`Self::name_triangles`] via a frozen [`Csr`] snapshot — sorted-merge
    /// neighbour intersection instead of per-pair hash probes.
    fn name_triangles_csr(csr: &Csr, scn: &Scn, v: VertexId) -> Vec<(u32, u32)> {
        Self::to_name_pairs(scn, triangles_of_csr(csr, v))
    }

    fn to_name_pairs(scn: &Scn, tris: Vec<(VertexId, VertexId)>) -> Vec<(u32, u32)> {
        let mut out: Vec<(u32, u32)> = tris
            .into_iter()
            .map(|(x, y)| {
                let nx = scn.graph.vertex(x).name.0;
                let ny = scn.graph.vertex(y).name.0;
                (nx.min(ny), nx.max(ny))
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The cached profile of a vertex.
    pub fn profile(&self, v: VertexId) -> &VertexProfile {
        &self.profiles[v.index()]
    }

    /// γ₄'s decay factor α the engine was built with.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// WL refinement iterations (and ego radius) the caches were built at.
    pub fn wl_iters(&self) -> usize {
        self.wl_iters
    }

    /// Absorb a new mention's profile into the cache: merge into vertex
    /// `v`'s profile, or append when `v` is a vertex created after the
    /// engine was built. Structural caches (WL, triangles) for `v` are
    /// invalidated and recomputed lazily on the next query — consistent
    /// with the paper's no-retraining incremental semantics.
    pub fn absorb(&mut self, v: VertexId, delta: &VertexProfile) {
        if v.index() < self.profiles.len() {
            self.profiles[v.index()].merge(delta);
        } else {
            assert_eq!(
                v.index(),
                self.profiles.len(),
                "vertices must be absorbed in creation order"
            );
            self.profiles.push(delta.clone());
        }
        // Slabs stay parallel to `profiles`; a `None` slot is the lazy
        // invalidation marker.
        self.wl.resize(self.profiles.len(), None);
        self.tris.resize(self.profiles.len(), None);
        self.join.resize_with(self.profiles.len(), || None);
        self.cnorm.resize(self.profiles.len(), 0.0);
        self.wl[v.index()] = None;
        self.tris[v.index()] = None;
        self.cnorm[v.index()] = iuad_text::norm(&self.profiles[v.index()].keyword_centroid);
        // The group-filtered evidence basis of `v`'s whole name group is
        // stale: `v`'s new items could match items the filter dropped from
        // its peers. Drop the group to the exact full-evidence fallback
        // (O(group); the removed entry keeps repeat absorbs O(1)).
        let name = self.profiles[v.index()].name;
        if let Some(members) = self.join_groups.remove(&name) {
            for u in members {
                self.join[u.index()] = None;
            }
        }
    }

    /// γ-vector between two *same-name* vertices (both must be in cache
    /// scope; γ₁ is computed over the name group's shared label basis, so
    /// cross-name queries would see a zero kernel).
    pub fn similarity(&self, ctx: &ProfileContext, vi: VertexId, vj: VertexId) -> SimilarityVector {
        let si = self.side(vi);
        let sj = self.side(vj);
        let g1 = match (si.wl, sj.wl) {
            (Some(a), Some(b)) => normalized_kernel(a, b),
            _ => 0.0,
        };
        self.assemble(ctx, g1, &si, &sj)
    }

    /// γ-vectors for every unordered pair of `vs` (the `i < j` pairs of the
    /// slice, in nested-loop order) — the batch path Stage 2 uses per
    /// same-name candidate group.
    ///
    /// Produces bit-identical vectors to calling [`Self::similarity`] per
    /// pair, but computes all WL kernels of the group in one pass over an
    /// inverted label index: each vertex's feature list is scanned once per
    /// *group* instead of once per *pair*, which is the dominant Stage-2
    /// saving on heavily ambiguous names.
    pub fn similarity_block(&self, ctx: &ProfileContext, vs: &[VertexId]) -> Vec<SimilarityVector> {
        let k = vs.len();
        if k < 2 {
            return Vec::new();
        }
        let tri = |i: usize, j: usize| i * (2 * k - i - 1) / 2 + (j - i - 1);
        let mut dots = vec![0.0f64; k * (k - 1) / 2];
        let sides: Vec<Side<'_>> = vs.iter().map(|&v| self.side(v)).collect();
        // Inverted label index over the group: `head` maps a label to a
        // chain of (vertex slot, count) nodes in `arena` (`0` = end, node
        // ids offset by 1). Processing vertices in slice order and labels
        // in ascending order makes every pair's dot product accumulate in
        // ascending shared-label order — the merge join's exact sequence.
        let mut head: rustc_hash::FxHashMap<u64, u32> = rustc_hash::FxHashMap::default();
        let mut arena: Vec<(u32, u32, u32)> = Vec::new();
        for (j, s) in sides.iter().enumerate() {
            let Some(f) = s.wl else {
                continue;
            };
            for (l, c) in f.iter() {
                let slot = head.entry(l).or_insert(0);
                let mut cur = *slot;
                while cur != 0 {
                    let (i, ci, next) = arena[(cur - 1) as usize];
                    dots[tri(i as usize, j)] += f64::from(ci) * f64::from(c);
                    cur = next;
                }
                arena.push((j as u32, c, *slot));
                *slot = arena.len() as u32;
            }
        }

        let mut out = Vec::with_capacity(dots.len());
        for i in 0..k {
            for j in (i + 1)..k {
                let g1 = match (sides[i].wl, sides[j].wl) {
                    (Some(fa), Some(fb)) if fa.norm() != 0.0 && fb.norm() != 0.0 => {
                        (dots[tri(i, j)] / (fa.norm() * fb.norm())).clamp(0.0, 1.0)
                    }
                    _ => 0.0,
                };
                // Orient like `similarity(min, max)` does.
                let (lo, hi) = if vs[i] <= vs[j] { (i, j) } else { (j, i) };
                out.push(self.assemble(ctx, g1, &sides[lo], &sides[hi]));
            }
        }
        out
    }

    /// γ-vector between an ad-hoc profile (e.g. a new paper in the
    /// incremental setting) and an existing vertex. The caller supplies the
    /// ad-hoc side's WL features and name-level triangles; `scn` enables
    /// on-demand structural features for out-of-scope vertices.
    pub fn similarity_against(
        &self,
        scn: &Scn,
        ctx: &ProfileContext,
        new_profile: &VertexProfile,
        new_wl: &SparseFeatures,
        new_tris: &[(u32, u32)],
        vj: VertexId,
    ) -> SimilarityVector {
        let pj = &self.profiles[vj.index()];
        let g1 = match &self.wl[vj.index()] {
            Some(b) => normalized_kernel(new_wl, b),
            None => normalized_kernel(new_wl, &Self::wl_of(scn, vj, self.wl_iters)),
        };
        // Cached triangles are borrowed; only a cache miss materialises.
        // Both sides use *full* evidence: the ad-hoc profile is outside the
        // group basis the join filter was computed against.
        let computed;
        let tj: &[(u32, u32)] = match &self.tris[vj.index()] {
            Some(t) => t,
            None => {
                computed = Self::name_triangles(scn, vj);
                &computed
            }
        };
        let si = Side {
            wl: None,
            tris: new_tris,
            kw: &new_profile.keyword_years,
            venues: &new_profile.venue_counts,
            profile: new_profile,
            cnorm: iuad_text::norm(&new_profile.keyword_centroid),
        };
        let sj = Side {
            wl: None,
            tris: tj,
            kw: &pj.keyword_years,
            venues: &pj.venue_counts,
            profile: pj,
            cnorm: self.cnorm[vj.index()],
        };
        self.assemble(ctx, g1, &si, &sj)
    }

    /// Synthetic matched pair from splitting one vertex in half (§V-F2, the
    /// imbalance-correcting sampling strategy). Returns `None` for vertices
    /// with fewer than 4 papers.
    ///
    /// Structural approximation: both halves share the vertex's position in
    /// the network, so γ₁ is the self-kernel (1.0 when features exist) and
    /// γ₂ is the full clique overlap against the half-τ.
    pub fn synthetic_split_vector(
        &self,
        scn: &Scn,
        ctx: &ProfileContext,
        v: VertexId,
        rng: &mut impl rand::Rng,
    ) -> Option<SimilarityVector> {
        use rand::seq::SliceRandom;
        let mentions = &scn.graph.vertex(v).mentions;
        if mentions.len() < 4 {
            return None;
        }
        // Shuffle an index permutation, not the mention list: same rng
        // stream and same resulting halves, no payload clone.
        let mut idx: Vec<usize> = (0..mentions.len()).collect();
        idx.shuffle(rng);
        let (idx_a, idx_b) = idx.split_at(idx.len() / 2);
        let name = scn.graph.vertex(v).name;
        let pa = VertexProfile::from_mention_indices(name, mentions, idx_a, ctx);
        let pb = VertexProfile::from_mention_indices(name, mentions, idx_b, ctx);
        let wl_nonempty = self.wl[v.index()].as_ref().is_some_and(|f| !f.is_empty());
        let g1 = if wl_nonempty { 1.0 } else { 0.0 };
        // Both halves take the vertex's *full* triangle list (the split is
        // structural-identity by construction) and their own full ad-hoc
        // profile evidence.
        let t = self.tris[v.index()].as_deref().unwrap_or(&[]);
        fn side_of<'a>(p: &'a VertexProfile, t: &'a [(u32, u32)]) -> Side<'a> {
            Side {
                wl: None,
                tris: t,
                kw: &p.keyword_years,
                venues: &p.venue_counts,
                profile: p,
                cnorm: iuad_text::norm(&p.keyword_centroid),
            }
        }
        Some(self.assemble(ctx, g1, &side_of(&pa, t), &side_of(&pb, t)))
    }

    fn assemble(
        &self,
        ctx: &ProfileContext,
        g1: f64,
        si: &Side<'_>,
        sj: &Side<'_>,
    ) -> SimilarityVector {
        let tau = si.profile.num_papers().min(sj.profile.num_papers()).max(1) as f64;
        [
            g1,
            gamma2_cliques(si.tris, sj.tris, tau),
            cosine_with_norms(
                &si.profile.keyword_centroid,
                &sj.profile.keyword_centroid,
                si.cnorm,
                sj.cnorm,
            ),
            gamma4_join(si.kw, sj.kw, tau, ctx, |gap| {
                // Table hit for realistic gaps; identical bits either way.
                match self.g4_exp.get(usize::from(gap)) {
                    Some(&e) => e,
                    None => (-self.alpha * f64::from(gap)).exp(),
                }
            }),
            gamma5_counts(
                si.venues,
                si.profile.representative_venue,
                sj.venues,
                sj.profile.representative_venue,
                tau,
            ),
            gamma6_join(si.venues, sj.venues, tau, ctx),
        ]
    }

    /// WL features for a brand-new mention: a star of the paper's co-author
    /// names around the target name, refined `wl_iters` times. Lives here so
    /// the incremental path shares the label space (name ids) with cached
    /// features.
    pub fn star_features(&self, target: u32, coauthor_names: &[u32]) -> SparseFeatures {
        let mut g: iuad_graph::AdjGraph<u32, ()> = iuad_graph::AdjGraph::new();
        let center = g.add_vertex(target);
        for &n in coauthor_names {
            let leaf = g.add_vertex(n);
            g.upsert_edge(center, leaf, || (), |_| ());
        }
        vertex_features(&g, center, self.wl_iters, |v| *g.vertex(v) as u64)
    }
}

/// γ₂ (Equation 5): `|L(v_i) ∩ L(v_j)| / τ` over sorted name-pair triangles.
pub fn gamma2_cliques(a: &[(u32, u32)], b: &[(u32, u32)], tau: f64) -> f64 {
    let mut i = 0;
    let mut j = 0;
    let mut common = 0usize;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                common += 1;
                i += 1;
                j += 1;
            }
        }
    }
    common as f64 / tau
}

/// Smallest absolute difference between two ascending year lists, by
/// two-pointer scan — O(|a| + |b|) against the nested O(|a|·|b|) loop.
fn min_year_gap(a: &[u16], b: &[u16]) -> u16 {
    let mut i = 0;
    let mut j = 0;
    let mut best = u16::MAX;
    while i < a.len() && j < b.len() {
        let (ya, yb) = (a[i], b[j]);
        best = best.min(ya.abs_diff(yb));
        if best == 0 {
            return 0;
        }
        if ya <= yb {
            i += 1;
        } else {
            j += 1;
        }
    }
    best
}

/// γ₄ (Equation 7, with the decay sign fixed): over common keywords `b`,
/// `Σ e^{−α·min(b)} / ln F_B(b) / τ` where `min(b)` is the smallest year gap
/// between the two vertices' usages of `b`. Common keywords come from a
/// merge join over the keyword-sorted profiles.
pub fn gamma4_time_consistency(
    pi: &VertexProfile,
    pj: &VertexProfile,
    tau: f64,
    alpha: f64,
    ctx: &ProfileContext,
) -> f64 {
    gamma4_join(&pi.keyword_years, &pj.keyword_years, tau, ctx, |gap| {
        (-alpha * f64::from(gap)).exp()
    })
}

/// The γ₄ merge join with the decay factor abstracted: the engine supplies
/// a table lookup, the public entry point a direct `exp`.
#[inline]
fn gamma4_join(
    a: &KeywordYears,
    b: &KeywordYears,
    tau: f64,
    ctx: &ProfileContext,
    decay: impl Fn(u16) -> f64,
) -> f64 {
    let (wa, wb) = (a.words(), b.words());
    let mut i = 0;
    let mut j = 0;
    let mut sum = 0.0;
    while i < wa.len() && j < wb.len() {
        let (x, y) = (wa[i], wb[j]);
        if x == y {
            let min_gap = min_year_gap(a.years_at(i), b.years_at(j));
            sum += decay(min_gap) / ctx.word_ln_freq[x as usize];
            i += 1;
            j += 1;
        } else {
            // Branchless advance: exactly one side moves.
            i += usize::from(x < y);
            j += usize::from(y < x);
        }
    }
    sum / tau
}

/// γ₅ (Equation 8): cross-counts of each vertex's representative venue in
/// the other's venue multiset, over τ.
pub fn gamma5_representative(pi: &VertexProfile, pj: &VertexProfile, tau: f64) -> f64 {
    gamma5_counts(
        &pi.venue_counts,
        pi.representative_venue,
        &pj.venue_counts,
        pj.representative_venue,
        tau,
    )
}

/// γ₅ over explicit venue multisets (the engine passes group-filtered ones;
/// exact because a representative venue is always in its owner's multiset,
/// so a cross-count > 0 implies the venue is shared and survives the
/// filter).
fn gamma5_counts(
    venues_i: &VenueCounts,
    rep_i: Option<iuad_corpus::VenueId>,
    venues_j: &VenueCounts,
    rep_j: Option<iuad_corpus::VenueId>,
    tau: f64,
) -> f64 {
    let cnt = |counts: &VenueCounts, venue: Option<iuad_corpus::VenueId>| -> u32 {
        venue.map_or(0, |v| counts.count_of(v.0))
    };
    let c = cnt(venues_j, rep_i) + cnt(venues_i, rep_j);
    f64::from(c) / tau
}

/// γ₆ (Equation 9): Adamic/Adar over common venues, emphasising small
/// minority venues via `1 / ln F_H(h)`. Common venues come from a merge
/// join over the venue-sorted multisets.
pub fn gamma6_communities(
    pi: &VertexProfile,
    pj: &VertexProfile,
    tau: f64,
    ctx: &ProfileContext,
) -> f64 {
    gamma6_join(&pi.venue_counts, &pj.venue_counts, tau, ctx)
}

/// The γ₆ merge join over explicit venue multisets.
fn gamma6_join(va: &VenueCounts, vb: &VenueCounts, tau: f64, ctx: &ProfileContext) -> f64 {
    let a = va.entries();
    let b = vb.entries();
    let mut i = 0;
    let mut j = 0;
    let mut sum = 0.0;
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let h = a[i].0;
                // `get` guards venues unseen at context-build time (possible
                // in the incremental setting).
                sum += ctx
                    .venue_aa_weight
                    .get(h as usize)
                    .copied()
                    .unwrap_or_else(crate::profile::unseen_venue_aa_weight);
                i += 1;
                j += 1;
            }
        }
    }
    sum / tau
}

#[cfg(test)]
mod tests {
    use super::*;
    use iuad_corpus::{Corpus, CorpusConfig, NameId};
    use rustc_hash::FxHashMap;

    fn setup() -> (Corpus, Scn) {
        let c = Corpus::generate(&CorpusConfig {
            num_authors: 250,
            num_papers: 1000,
            seed: 23,
            ..Default::default()
        });
        let scn = Scn::build(&c, 2);
        (c, scn)
    }

    fn an_ambiguous_pair(scn: &Scn) -> (VertexId, VertexId) {
        let vs = scn
            .by_name
            .values()
            .find(|vs| vs.len() >= 2)
            .expect("ambiguous name exists");
        (vs[0], vs[1])
    }

    #[test]
    fn similarity_vector_is_finite_and_bounded() {
        let (c, scn) = setup();
        let ctx = ProfileContext::build(&c, 16, 2);
        let eng = SimilarityEngine::build(&scn, &ctx, 0.62, 2, CacheScope::AmbiguousOnly);
        let mut checked = 0;
        for vs in scn.by_name.values().filter(|vs| vs.len() >= 2).take(20) {
            for i in 0..vs.len().min(4) {
                for j in (i + 1)..vs.len().min(4) {
                    let g = eng.similarity(&ctx, vs[i], vs[j]);
                    for (k, &x) in g.iter().enumerate() {
                        assert!(x.is_finite(), "γ{} not finite", k + 1);
                    }
                    assert!((0.0..=1.0).contains(&g[0]), "γ1 out of range: {}", g[0]);
                    assert!((-1.0..=1.0).contains(&g[2]), "γ3 out of range: {}", g[2]);
                    for &k in &[1usize, 3, 4, 5] {
                        assert!(g[k] >= 0.0, "γ{} negative: {}", k + 1, g[k]);
                    }
                    checked += 1;
                }
            }
        }
        assert!(checked > 0, "no ambiguous pairs exercised");
    }

    #[test]
    fn similarity_is_symmetric() {
        let (c, scn) = setup();
        let ctx = ProfileContext::build(&c, 16, 2);
        let eng = SimilarityEngine::build(&scn, &ctx, 0.62, 2, CacheScope::AmbiguousOnly);
        let (vi, vj) = an_ambiguous_pair(&scn);
        let a = eng.similarity(&ctx, vi, vj);
        let b = eng.similarity(&ctx, vj, vi);
        for k in 0..NUM_SIMILARITIES {
            assert!(
                (a[k] - b[k]).abs() < 1e-12,
                "γ{} asymmetric: {} vs {}",
                k + 1,
                a[k],
                b[k]
            );
        }
    }

    #[test]
    fn same_author_vertices_more_similar_than_different() {
        // Average γ over true-match pairs should exceed non-match pairs on
        // at least the content features — the signal GCN relies on.
        let (c, scn) = setup();
        let ctx = ProfileContext::build(&c, 16, 2);
        let eng = SimilarityEngine::build(&scn, &ctx, 0.62, 2, CacheScope::AmbiguousOnly);
        let mut same = [0.0f64; NUM_SIMILARITIES];
        let mut diff = [0.0f64; NUM_SIMILARITIES];
        let mut n_same = 0usize;
        let mut n_diff = 0usize;
        for vs in scn.by_name.values().filter(|vs| vs.len() >= 2) {
            for i in 0..vs.len() {
                for j in (i + 1)..vs.len() {
                    let truth_i = majority_truth(&c, &scn, vs[i]);
                    let truth_j = majority_truth(&c, &scn, vs[j]);
                    let g = eng.similarity(&ctx, vs[i], vs[j]);
                    if truth_i == truth_j {
                        for k in 0..NUM_SIMILARITIES {
                            same[k] += g[k];
                        }
                        n_same += 1;
                    } else {
                        for k in 0..NUM_SIMILARITIES {
                            diff[k] += g[k];
                        }
                        n_diff += 1;
                    }
                }
            }
        }
        assert!(
            n_same > 5 && n_diff > 5,
            "insufficient pairs: {n_same}/{n_diff}"
        );
        let mean = |acc: &[f64; NUM_SIMILARITIES], n: usize| {
            let mut m = *acc;
            m.iter_mut().for_each(|x| *x /= n as f64);
            m
        };
        let ms = mean(&same, n_same);
        let md = mean(&diff, n_diff);
        // γ3 (interest cosine) and γ6 (venues) must separate on topical data.
        assert!(ms[2] > md[2], "γ3: same {:.3} vs diff {:.3}", ms[2], md[2]);
        assert!(ms[5] > md[5], "γ6: same {:.3} vs diff {:.3}", ms[5], md[5]);
    }

    fn majority_truth(c: &Corpus, scn: &Scn, v: VertexId) -> u32 {
        let mut counts: FxHashMap<u32, usize> = FxHashMap::default();
        for m in &scn.graph.vertex(v).mentions {
            *counts.entry(c.truth_of(*m).0).or_insert(0) += 1;
        }
        counts
            .into_iter()
            .max_by_key(|&(a, n)| (n, std::cmp::Reverse(a)))
            .map(|(a, _)| a)
            .unwrap()
    }

    #[test]
    fn gamma2_counts_shared_cliques() {
        let a = [(1, 2), (3, 4), (5, 6)];
        let b = [(3, 4), (5, 6), (7, 8)];
        assert_eq!(gamma2_cliques(&a, &b, 2.0), 1.0);
        assert_eq!(gamma2_cliques(&a, &[], 2.0), 0.0);
    }

    #[test]
    fn gamma4_decays_with_year_gap() {
        let (c, _) = setup();
        let ctx = ProfileContext::build(&c, 16, 2);
        let mk = |years: Vec<u16>| {
            let mut p = VertexProfile::from_mentions(NameId(0), &[], &ctx);
            p.keyword_years.insert(0, years);
            p.papers = vec![iuad_corpus::PaperId(0)];
            p
        };
        let base = mk(vec![2000]);
        let close = mk(vec![2001]);
        let far = mk(vec![2015]);
        let g_close = gamma4_time_consistency(&base, &close, 1.0, 0.62, &ctx);
        let g_far = gamma4_time_consistency(&base, &far, 1.0, 0.62, &ctx);
        assert!(g_close > g_far, "decay violated: {g_close} <= {g_far}");
    }

    #[test]
    fn min_year_gap_matches_nested_scan() {
        let cases: [(&[u16], &[u16]); 5] = [
            (&[2000], &[2010]),
            (&[1999, 2004, 2010], &[2002, 2003]),
            (&[1990, 2020], &[2000, 2001, 2002]),
            (&[2000, 2000], &[2000]),
            (&[1995], &[1990, 1996, 2005]),
        ];
        for (a, b) in cases {
            let brute = a
                .iter()
                .flat_map(|&x| b.iter().map(move |&y| x.abs_diff(y)))
                .min()
                .unwrap();
            assert_eq!(min_year_gap(a, b), brute, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn gamma5_counts_cross_representative_venues() {
        let (c, _) = setup();
        let ctx = ProfileContext::build(&c, 16, 2);
        let mut p1 = VertexProfile::from_mentions(NameId(0), &[], &ctx);
        let mut p2 = VertexProfile::from_mentions(NameId(0), &[], &ctx);
        p1.venue_counts.insert(3, 5);
        p1.representative_venue = Some(iuad_corpus::VenueId(3));
        p2.venue_counts.insert(3, 2);
        p2.representative_venue = Some(iuad_corpus::VenueId(3));
        // cnt(H2, rep1) + cnt(H1, rep2) = 2 + 5 = 7.
        assert_eq!(gamma5_representative(&p1, &p2, 1.0), 7.0);
    }

    #[test]
    fn gamma6_emphasises_rare_venues() {
        let (c, _) = setup();
        let ctx = ProfileContext::build(&c, 16, 2);
        let mut idx: Vec<usize> = (0..ctx.venue_freq.len()).collect();
        idx.sort_by_key(|&i| ctx.venue_freq[i]);
        let rare = idx[0] as u32;
        let common = *idx.last().unwrap() as u32;
        if ctx.venue_freq[rare as usize] == ctx.venue_freq[common as usize] {
            return; // degenerate corpus; nothing to compare
        }
        let mk = |venue: u32| {
            let mut p = VertexProfile::from_mentions(NameId(0), &[], &ctx);
            p.venue_counts.insert(venue, 1);
            p
        };
        let g_rare = gamma6_communities(&mk(rare), &mk(rare), 1.0, &ctx);
        let g_common = gamma6_communities(&mk(common), &mk(common), 1.0, &ctx);
        assert!(g_rare >= g_common);
    }

    #[test]
    fn synthetic_split_produces_high_similarity() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let (c, scn) = setup();
        let ctx = ProfileContext::build(&c, 16, 2);
        let eng = SimilarityEngine::build(&scn, &ctx, 0.62, 2, CacheScope::All);
        let mut rng = StdRng::seed_from_u64(3);
        // Pick a vertex with many papers.
        let big = scn
            .graph
            .vertices()
            .max_by_key(|(_, p)| p.mentions.len())
            .map(|(v, _)| v)
            .unwrap();
        let g = eng
            .synthetic_split_vector(&scn, &ctx, big, &mut rng)
            .expect("big vertex splittable");
        // A split of one real author should look strongly matched on
        // content: interests cosine near 1.
        assert!(g[2] > 0.5, "split halves should share interests: {g:?}");
    }

    #[test]
    fn split_requires_four_papers() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let (c, scn) = setup();
        let ctx = ProfileContext::build(&c, 16, 2);
        let eng = SimilarityEngine::build(&scn, &ctx, 0.62, 2, CacheScope::AmbiguousOnly);
        let mut rng = StdRng::seed_from_u64(3);
        let small = scn
            .graph
            .vertices()
            .find(|(_, p)| p.mentions.len() < 4)
            .map(|(v, _)| v)
            .unwrap();
        assert!(eng
            .synthetic_split_vector(&scn, &ctx, small, &mut rng)
            .is_none());
    }

    #[test]
    fn block_matches_per_pair_similarity_exactly() {
        let (c, scn) = setup();
        let ctx = ProfileContext::build(&c, 16, 2);
        let eng = SimilarityEngine::build(&scn, &ctx, 0.62, 2, CacheScope::AmbiguousOnly);
        let mut compared = 0usize;
        for vs in scn.by_name.values().filter(|vs| vs.len() >= 2) {
            let block = eng.similarity_block(&ctx, vs);
            let mut it = block.iter();
            for i in 0..vs.len() {
                for j in (i + 1)..vs.len() {
                    let per_pair = eng.similarity(&ctx, vs[i].min(vs[j]), vs[i].max(vs[j]));
                    // Bit-identical, not approximately equal: the batch
                    // path accumulates in the merge join's exact order.
                    assert_eq!(it.next().unwrap(), &per_pair, "pair {i},{j}");
                    compared += 1;
                }
            }
        }
        assert!(compared > 50, "too few pairs compared: {compared}");
    }

    #[test]
    fn absorb_drops_group_to_exact_full_evidence() {
        let (c, scn) = setup();
        let ctx = ProfileContext::build(&c, 16, 2);
        let mut eng = SimilarityEngine::build(&scn, &ctx, 0.62, 2, CacheScope::AmbiguousOnly);
        let vs = scn
            .by_name
            .values()
            .find(|vs| vs.len() >= 3)
            .expect("a 3+ group exists")
            .clone();
        let before: Vec<SimilarityVector> = vec![
            eng.similarity(&ctx, vs[0], vs[1]),
            eng.similarity(&ctx, vs[1], vs[2]),
        ];
        // Absorb a new paper's profile into vs[0]: its whole name group
        // falls back to full (unfiltered) evidence.
        let paper = &c.papers[0];
        let delta = VertexProfile::from_new_paper(scn.graph.vertex(vs[0]).name, paper, &ctx);
        eng.absorb(vs[0], &delta);
        // Pairs involving the absorbed vertex lose their structural cache…
        let touched = eng.similarity(&ctx, vs[0], vs[1]);
        assert_eq!(touched[0], 0.0, "γ1 must drop to 0 after invalidation");
        // …while pairs among untouched members are *bit-identical* on the
        // full-evidence fallback — the group filter never changed a value.
        let untouched = eng.similarity(&ctx, vs[1], vs[2]);
        assert_eq!(untouched, before[1]);
    }

    #[test]
    fn star_features_similar_for_shared_coauthors() {
        let (c, scn) = setup();
        let ctx = ProfileContext::build(&c, 16, 2);
        let eng = SimilarityEngine::build(&scn, &ctx, 0.62, 2, CacheScope::AmbiguousOnly);
        let f1 = eng.star_features(5, &[10, 11, 12]);
        let f2 = eng.star_features(5, &[10, 11, 12]);
        let f3 = eng.star_features(5, &[90, 91, 92]);
        assert!((normalized_kernel(&f1, &f2) - 1.0).abs() < 1e-12);
        assert!(normalized_kernel(&f1, &f3) < 1.0);
    }
}
