//! The six similarity functions of §V-B and their cached computation engine.
//!
//! | γ | What | Family |
//! |---|------|--------|
//! | γ₁ | normalised Weisfeiler-Lehman subgraph kernel | Gaussian |
//! | γ₂ | co-author clique (triangle) coincidence ratio | Exponential |
//! | γ₃ | cosine of keyword-embedding centroids | Gaussian |
//! | γ₄ | time consistency of research interests | Exponential |
//! | γ₅ | representative-community coincidence | Exponential |
//! | γ₆ | Adamic/Adar research-community similarity | Exponential |
//!
//! Families: bounded, symmetric-ish scores are modelled Gaussian; sparse
//! non-negative ratios are modelled Exponential (§V-C uses the exponential
//! family precisely so heterogeneous features can coexist in one
//! likelihood).
//!
//! γ₄ deviation: the paper writes `e^{α·min(b)}` with α = 0.62, citing the
//! FutureRank *decay* factor; a positive exponent rewards temporally distant
//! reuse, contradicting the stated intuition, so we implement the decay
//! `e^{−α·min(b)}` (see DESIGN.md).

use rustc_hash::FxHashMap;

use iuad_graph::triangles::triangles_of;
use iuad_graph::wl::{normalized_kernel, vertex_features, WlFeatures};
use iuad_graph::VertexId;
use iuad_mixture::Family;
use iuad_par::ParallelConfig;
use iuad_text::cosine;

use crate::profile::{ProfileContext, VertexProfile};
use crate::scn::Scn;

/// Number of similarity functions.
pub const NUM_SIMILARITIES: usize = 6;

/// Distribution family per similarity (order γ₁..γ₆).
pub const FAMILIES: [Family; NUM_SIMILARITIES] = [
    Family::Gaussian,    // γ1 WL kernel ∈ [0,1]
    Family::Exponential, // γ2 clique coincidence ratio
    Family::Gaussian,    // γ3 interest cosine ∈ [-1,1]
    Family::Exponential, // γ4 time consistency
    Family::Exponential, // γ5 representative community
    Family::Exponential, // γ6 research communities (Adamic/Adar)
];

/// A γ-vector for one candidate pair.
pub type SimilarityVector = [f64; NUM_SIMILARITIES];

/// Which vertices to pre-cache structural features for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheScope {
    /// Only vertices of names with ≥ 2 vertices (all Stage-2 candidates).
    AmbiguousOnly,
    /// Every vertex (needed when arbitrary names can be queried, e.g. the
    /// incremental setting).
    All,
}

/// Per-vertex caches + the logic of γ₁..γ₆.
///
/// Owns its caches (no borrows), so it can live inside [`crate::Iuad`]
/// alongside the network it was built from; methods take the graph/context
/// by reference where needed.
#[derive(Debug)]
pub struct SimilarityEngine {
    profiles: Vec<VertexProfile>,
    wl: FxHashMap<VertexId, WlFeatures>,
    tris: FxHashMap<VertexId, Vec<(u32, u32)>>,
    /// Decay factor α of γ₄ (paper: 0.62).
    pub alpha: f64,
    /// WL refinement iterations h (and ego radius).
    pub wl_iters: usize,
}

impl SimilarityEngine {
    /// Build the engine, caching profiles for every vertex and structural
    /// features per `scope`. Fully sequential; see [`Self::build_parallel`].
    pub fn build(
        scn: &Scn,
        ctx: &ProfileContext,
        alpha: f64,
        wl_iters: usize,
        scope: CacheScope,
    ) -> Self {
        Self::build_parallel(
            scn,
            ctx,
            alpha,
            wl_iters,
            scope,
            &ParallelConfig::sequential(),
        )
    }

    /// Build the engine, fanning the per-vertex profile and structural
    /// feature extraction (the WL and triangle kernels — the O(n·deg²) hot
    /// path of engine construction) across `par.threads` workers. Every
    /// cached feature is a pure function of the network, so the result is
    /// identical at any thread count.
    pub fn build_parallel(
        scn: &Scn,
        ctx: &ProfileContext,
        alpha: f64,
        wl_iters: usize,
        scope: CacheScope,
        par: &ParallelConfig,
    ) -> Self {
        let verts: Vec<VertexId> = scn.graph.vertices().map(|(v, _)| v).collect();
        let profiles: Vec<VertexProfile> = iuad_par::parallel_map(par, &verts, |&v| {
            let payload = scn.graph.vertex(v);
            VertexProfile::from_mentions(payload.name, &payload.mentions, ctx)
        });

        let mut scoped: Vec<VertexId> = match scope {
            CacheScope::AmbiguousOnly => scn
                .by_name
                .values()
                .filter(|vs| vs.len() >= 2)
                .flatten()
                .copied()
                .collect(),
            CacheScope::All => verts,
        };
        scoped.sort_unstable();
        scoped.dedup();
        let features = iuad_par::parallel_map(par, &scoped, |&v| {
            (Self::wl_of(scn, v, wl_iters), Self::name_triangles(scn, v))
        });

        let mut wl = FxHashMap::default();
        let mut tris = FxHashMap::default();
        for (&v, (w, t)) in scoped.iter().zip(features) {
            wl.insert(v, w);
            tris.insert(v, t);
        }
        SimilarityEngine {
            profiles,
            wl,
            tris,
            alpha,
            wl_iters,
        }
    }

    fn wl_of(scn: &Scn, v: VertexId, wl_iters: usize) -> WlFeatures {
        vertex_features(&scn.graph, v, wl_iters, |w| {
            scn.graph.vertex(w).name.0 as u64
        })
    }

    /// Triangles through `v` as sorted co-member *name* pairs (names, not
    /// vertex ids, so that structurally parallel cliques coincide).
    fn name_triangles(scn: &Scn, v: VertexId) -> Vec<(u32, u32)> {
        let mut out: Vec<(u32, u32)> = triangles_of(&scn.graph, v)
            .into_iter()
            .map(|(x, y)| {
                let nx = scn.graph.vertex(x).name.0;
                let ny = scn.graph.vertex(y).name.0;
                (nx.min(ny), nx.max(ny))
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The cached profile of a vertex.
    pub fn profile(&self, v: VertexId) -> &VertexProfile {
        &self.profiles[v.index()]
    }

    /// Absorb a new mention's profile into the cache: merge into vertex
    /// `v`'s profile, or append when `v` is a vertex created after the
    /// engine was built. Structural caches (WL, triangles) for `v` are
    /// invalidated and recomputed lazily on the next query — consistent
    /// with the paper's no-retraining incremental semantics.
    pub fn absorb(&mut self, v: VertexId, delta: &VertexProfile) {
        if v.index() < self.profiles.len() {
            self.profiles[v.index()].merge(delta);
        } else {
            assert_eq!(
                v.index(),
                self.profiles.len(),
                "vertices must be absorbed in creation order"
            );
            self.profiles.push(delta.clone());
        }
        self.wl.remove(&v);
        self.tris.remove(&v);
    }

    /// γ-vector between two same-name vertices (both must be in cache scope).
    pub fn similarity(&self, ctx: &ProfileContext, vi: VertexId, vj: VertexId) -> SimilarityVector {
        let pi = &self.profiles[vi.index()];
        let pj = &self.profiles[vj.index()];
        let g1 = match (self.wl.get(&vi), self.wl.get(&vj)) {
            (Some(a), Some(b)) => normalized_kernel(a, b),
            _ => 0.0,
        };
        let empty: Vec<(u32, u32)> = Vec::new();
        let ti = self.tris.get(&vi).unwrap_or(&empty);
        let tj = self.tris.get(&vj).unwrap_or(&empty);
        self.assemble(ctx, g1, ti, tj, pi, pj)
    }

    /// γ-vector between an ad-hoc profile (e.g. a new paper in the
    /// incremental setting) and an existing vertex. The caller supplies the
    /// ad-hoc side's WL features and name-level triangles; `scn` enables
    /// on-demand structural features for out-of-scope vertices.
    pub fn similarity_against(
        &self,
        scn: &Scn,
        ctx: &ProfileContext,
        new_profile: &VertexProfile,
        new_wl: &WlFeatures,
        new_tris: &[(u32, u32)],
        vj: VertexId,
    ) -> SimilarityVector {
        let pj = &self.profiles[vj.index()];
        let g1 = match self.wl.get(&vj) {
            Some(b) => normalized_kernel(new_wl, b),
            None => normalized_kernel(new_wl, &Self::wl_of(scn, vj, self.wl_iters)),
        };
        let tj = match self.tris.get(&vj) {
            Some(t) => t.clone(),
            None => Self::name_triangles(scn, vj),
        };
        self.assemble(ctx, g1, new_tris, &tj, new_profile, pj)
    }

    /// Synthetic matched pair from splitting one vertex in half (§V-F2, the
    /// imbalance-correcting sampling strategy). Returns `None` for vertices
    /// with fewer than 4 papers.
    ///
    /// Structural approximation: both halves share the vertex's position in
    /// the network, so γ₁ is the self-kernel (1.0 when features exist) and
    /// γ₂ is the full clique overlap against the half-τ.
    pub fn synthetic_split_vector(
        &self,
        scn: &Scn,
        ctx: &ProfileContext,
        v: VertexId,
        rng: &mut impl rand::Rng,
    ) -> Option<SimilarityVector> {
        use rand::seq::SliceRandom;
        let mentions = &scn.graph.vertex(v).mentions;
        if mentions.len() < 4 {
            return None;
        }
        let mut shuffled = mentions.clone();
        shuffled.shuffle(rng);
        let (half_a, half_b) = shuffled.split_at(shuffled.len() / 2);
        let name = scn.graph.vertex(v).name;
        let pa = VertexProfile::from_mentions(name, half_a, ctx);
        let pb = VertexProfile::from_mentions(name, half_b, ctx);
        let wl_nonempty = self.wl.get(&v).is_some_and(|f| !f.is_empty());
        let g1 = if wl_nonempty { 1.0 } else { 0.0 };
        let empty: Vec<(u32, u32)> = Vec::new();
        let t = self.tris.get(&v).unwrap_or(&empty);
        Some(self.assemble(ctx, g1, t, t, &pa, &pb))
    }

    fn assemble(
        &self,
        ctx: &ProfileContext,
        g1: f64,
        tris_i: &[(u32, u32)],
        tris_j: &[(u32, u32)],
        pi: &VertexProfile,
        pj: &VertexProfile,
    ) -> SimilarityVector {
        let tau = pi.num_papers().min(pj.num_papers()).max(1) as f64;
        [
            g1,
            gamma2_cliques(tris_i, tris_j, tau),
            cosine(&pi.keyword_centroid, &pj.keyword_centroid),
            gamma4_time_consistency(pi, pj, tau, self.alpha, ctx),
            gamma5_representative(pi, pj, tau),
            gamma6_communities(pi, pj, tau, ctx),
        ]
    }

    /// WL features for a brand-new mention: a star of the paper's co-author
    /// names around the target name, refined `wl_iters` times. Lives here so
    /// the incremental path shares the label space (name ids) with cached
    /// features.
    pub fn star_features(&self, target: u32, coauthor_names: &[u32]) -> WlFeatures {
        let mut g: iuad_graph::AdjGraph<u32, ()> = iuad_graph::AdjGraph::new();
        let center = g.add_vertex(target);
        for &n in coauthor_names {
            let leaf = g.add_vertex(n);
            g.upsert_edge(center, leaf, || (), |_| ());
        }
        vertex_features(&g, center, self.wl_iters, |v| *g.vertex(v) as u64)
    }
}

/// γ₂ (Equation 5): `|L(v_i) ∩ L(v_j)| / τ` over sorted name-pair triangles.
fn gamma2_cliques(a: &[(u32, u32)], b: &[(u32, u32)], tau: f64) -> f64 {
    let mut i = 0;
    let mut j = 0;
    let mut common = 0usize;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                common += 1;
                i += 1;
                j += 1;
            }
        }
    }
    common as f64 / tau
}

/// γ₄ (Equation 7, with the decay sign fixed): over common keywords `b`,
/// `Σ e^{−α·min(b)} / ln F_B(b) / τ` where `min(b)` is the smallest year gap
/// between the two vertices' usages of `b`.
fn gamma4_time_consistency(
    pi: &VertexProfile,
    pj: &VertexProfile,
    tau: f64,
    alpha: f64,
    ctx: &ProfileContext,
) -> f64 {
    let (small, large) = if pi.keyword_years.len() <= pj.keyword_years.len() {
        (&pi.keyword_years, &pj.keyword_years)
    } else {
        (&pj.keyword_years, &pi.keyword_years)
    };
    let mut sum = 0.0;
    for (w, years_a) in small {
        let Some(years_b) = large.get(w) else {
            continue;
        };
        let mut min_gap = u16::MAX;
        for &ya in years_a {
            for &yb in years_b {
                min_gap = min_gap.min(ya.abs_diff(yb));
            }
        }
        let fb = (ctx.word_freq(*w) as f64).max(2.0);
        sum += (-alpha * min_gap as f64).exp() / fb.ln();
    }
    sum / tau
}

/// γ₅ (Equation 8): cross-counts of each vertex's representative venue in
/// the other's venue multiset, over τ.
fn gamma5_representative(pi: &VertexProfile, pj: &VertexProfile, tau: f64) -> f64 {
    let cnt = |counts: &FxHashMap<u32, u32>, venue: Option<iuad_corpus::VenueId>| -> u32 {
        venue.and_then(|v| counts.get(&v.0).copied()).unwrap_or(0)
    };
    let c = cnt(&pj.venue_counts, pi.representative_venue)
        + cnt(&pi.venue_counts, pj.representative_venue);
    c as f64 / tau
}

/// γ₆ (Equation 9): Adamic/Adar over common venues, emphasising small
/// minority venues via `1 / ln F_H(h)`.
fn gamma6_communities(
    pi: &VertexProfile,
    pj: &VertexProfile,
    tau: f64,
    ctx: &ProfileContext,
) -> f64 {
    let (small, large) = if pi.venue_counts.len() <= pj.venue_counts.len() {
        (&pi.venue_counts, &pj.venue_counts)
    } else {
        (&pj.venue_counts, &pi.venue_counts)
    };
    let mut sum = 0.0;
    for h in small.keys() {
        if large.contains_key(h) {
            // `get` guards venues unseen at context-build time (possible in
            // the incremental setting).
            let fh = (ctx.venue_freq.get(*h as usize).copied().unwrap_or(1) as f64).max(2.0);
            sum += 1.0 / fh.ln();
        }
    }
    sum / tau
}

#[cfg(test)]
mod tests {
    use super::*;
    use iuad_corpus::{Corpus, CorpusConfig, NameId};

    fn setup() -> (Corpus, Scn) {
        let c = Corpus::generate(&CorpusConfig {
            num_authors: 250,
            num_papers: 1000,
            seed: 23,
            ..Default::default()
        });
        let scn = Scn::build(&c, 2);
        (c, scn)
    }

    fn an_ambiguous_pair(scn: &Scn) -> (VertexId, VertexId) {
        let vs = scn
            .by_name
            .values()
            .find(|vs| vs.len() >= 2)
            .expect("ambiguous name exists");
        (vs[0], vs[1])
    }

    #[test]
    fn similarity_vector_is_finite_and_bounded() {
        let (c, scn) = setup();
        let ctx = ProfileContext::build(&c, 16, 2);
        let eng = SimilarityEngine::build(&scn, &ctx, 0.62, 2, CacheScope::AmbiguousOnly);
        let mut checked = 0;
        for vs in scn.by_name.values().filter(|vs| vs.len() >= 2).take(20) {
            for i in 0..vs.len().min(4) {
                for j in (i + 1)..vs.len().min(4) {
                    let g = eng.similarity(&ctx, vs[i], vs[j]);
                    for (k, &x) in g.iter().enumerate() {
                        assert!(x.is_finite(), "γ{} not finite", k + 1);
                    }
                    assert!((0.0..=1.0).contains(&g[0]), "γ1 out of range: {}", g[0]);
                    assert!((-1.0..=1.0).contains(&g[2]), "γ3 out of range: {}", g[2]);
                    for &k in &[1usize, 3, 4, 5] {
                        assert!(g[k] >= 0.0, "γ{} negative: {}", k + 1, g[k]);
                    }
                    checked += 1;
                }
            }
        }
        assert!(checked > 0, "no ambiguous pairs exercised");
    }

    #[test]
    fn similarity_is_symmetric() {
        let (c, scn) = setup();
        let ctx = ProfileContext::build(&c, 16, 2);
        let eng = SimilarityEngine::build(&scn, &ctx, 0.62, 2, CacheScope::AmbiguousOnly);
        let (vi, vj) = an_ambiguous_pair(&scn);
        let a = eng.similarity(&ctx, vi, vj);
        let b = eng.similarity(&ctx, vj, vi);
        for k in 0..NUM_SIMILARITIES {
            assert!(
                (a[k] - b[k]).abs() < 1e-12,
                "γ{} asymmetric: {} vs {}",
                k + 1,
                a[k],
                b[k]
            );
        }
    }

    #[test]
    fn same_author_vertices_more_similar_than_different() {
        // Average γ over true-match pairs should exceed non-match pairs on
        // at least the content features — the signal GCN relies on.
        let (c, scn) = setup();
        let ctx = ProfileContext::build(&c, 16, 2);
        let eng = SimilarityEngine::build(&scn, &ctx, 0.62, 2, CacheScope::AmbiguousOnly);
        let mut same = [0.0f64; NUM_SIMILARITIES];
        let mut diff = [0.0f64; NUM_SIMILARITIES];
        let mut n_same = 0usize;
        let mut n_diff = 0usize;
        for vs in scn.by_name.values().filter(|vs| vs.len() >= 2) {
            for i in 0..vs.len() {
                for j in (i + 1)..vs.len() {
                    let truth_i = majority_truth(&c, &scn, vs[i]);
                    let truth_j = majority_truth(&c, &scn, vs[j]);
                    let g = eng.similarity(&ctx, vs[i], vs[j]);
                    if truth_i == truth_j {
                        for k in 0..NUM_SIMILARITIES {
                            same[k] += g[k];
                        }
                        n_same += 1;
                    } else {
                        for k in 0..NUM_SIMILARITIES {
                            diff[k] += g[k];
                        }
                        n_diff += 1;
                    }
                }
            }
        }
        assert!(
            n_same > 5 && n_diff > 5,
            "insufficient pairs: {n_same}/{n_diff}"
        );
        let mean = |acc: &[f64; NUM_SIMILARITIES], n: usize| {
            let mut m = *acc;
            m.iter_mut().for_each(|x| *x /= n as f64);
            m
        };
        let ms = mean(&same, n_same);
        let md = mean(&diff, n_diff);
        // γ3 (interest cosine) and γ6 (venues) must separate on topical data.
        assert!(ms[2] > md[2], "γ3: same {:.3} vs diff {:.3}", ms[2], md[2]);
        assert!(ms[5] > md[5], "γ6: same {:.3} vs diff {:.3}", ms[5], md[5]);
    }

    fn majority_truth(c: &Corpus, scn: &Scn, v: VertexId) -> u32 {
        let mut counts: FxHashMap<u32, usize> = FxHashMap::default();
        for m in &scn.graph.vertex(v).mentions {
            *counts.entry(c.truth_of(*m).0).or_insert(0) += 1;
        }
        counts
            .into_iter()
            .max_by_key(|&(a, n)| (n, std::cmp::Reverse(a)))
            .map(|(a, _)| a)
            .unwrap()
    }

    #[test]
    fn gamma2_counts_shared_cliques() {
        let a = [(1, 2), (3, 4), (5, 6)];
        let b = [(3, 4), (5, 6), (7, 8)];
        assert_eq!(gamma2_cliques(&a, &b, 2.0), 1.0);
        assert_eq!(gamma2_cliques(&a, &[], 2.0), 0.0);
    }

    #[test]
    fn gamma4_decays_with_year_gap() {
        let (c, _) = setup();
        let ctx = ProfileContext::build(&c, 16, 2);
        let mk = |years: Vec<u16>| {
            let mut p = VertexProfile::from_mentions(NameId(0), &[], &ctx);
            p.keyword_years.insert(0, years);
            p.papers = vec![iuad_corpus::PaperId(0)];
            p
        };
        let base = mk(vec![2000]);
        let close = mk(vec![2001]);
        let far = mk(vec![2015]);
        let g_close = gamma4_time_consistency(&base, &close, 1.0, 0.62, &ctx);
        let g_far = gamma4_time_consistency(&base, &far, 1.0, 0.62, &ctx);
        assert!(g_close > g_far, "decay violated: {g_close} <= {g_far}");
    }

    #[test]
    fn gamma5_counts_cross_representative_venues() {
        let (c, _) = setup();
        let ctx = ProfileContext::build(&c, 16, 2);
        let mut p1 = VertexProfile::from_mentions(NameId(0), &[], &ctx);
        let mut p2 = VertexProfile::from_mentions(NameId(0), &[], &ctx);
        p1.venue_counts.insert(3, 5);
        p1.representative_venue = Some(iuad_corpus::VenueId(3));
        p2.venue_counts.insert(3, 2);
        p2.representative_venue = Some(iuad_corpus::VenueId(3));
        // cnt(H2, rep1) + cnt(H1, rep2) = 2 + 5 = 7.
        assert_eq!(gamma5_representative(&p1, &p2, 1.0), 7.0);
    }

    #[test]
    fn gamma6_emphasises_rare_venues() {
        let (c, _) = setup();
        let ctx = ProfileContext::build(&c, 16, 2);
        let mut idx: Vec<usize> = (0..ctx.venue_freq.len()).collect();
        idx.sort_by_key(|&i| ctx.venue_freq[i]);
        let rare = idx[0] as u32;
        let common = *idx.last().unwrap() as u32;
        if ctx.venue_freq[rare as usize] == ctx.venue_freq[common as usize] {
            return; // degenerate corpus; nothing to compare
        }
        let mk = |venue: u32| {
            let mut p = VertexProfile::from_mentions(NameId(0), &[], &ctx);
            p.venue_counts.insert(venue, 1);
            p
        };
        let g_rare = gamma6_communities(&mk(rare), &mk(rare), 1.0, &ctx);
        let g_common = gamma6_communities(&mk(common), &mk(common), 1.0, &ctx);
        assert!(g_rare >= g_common);
    }

    #[test]
    fn synthetic_split_produces_high_similarity() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let (c, scn) = setup();
        let ctx = ProfileContext::build(&c, 16, 2);
        let eng = SimilarityEngine::build(&scn, &ctx, 0.62, 2, CacheScope::All);
        let mut rng = StdRng::seed_from_u64(3);
        // Pick a vertex with many papers.
        let big = scn
            .graph
            .vertices()
            .max_by_key(|(_, p)| p.mentions.len())
            .map(|(v, _)| v)
            .unwrap();
        let g = eng
            .synthetic_split_vector(&scn, &ctx, big, &mut rng)
            .expect("big vertex splittable");
        // A split of one real author should look strongly matched on
        // content: interests cosine near 1.
        assert!(g[2] > 0.5, "split halves should share interests: {g:?}");
    }

    #[test]
    fn split_requires_four_papers() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let (c, scn) = setup();
        let ctx = ProfileContext::build(&c, 16, 2);
        let eng = SimilarityEngine::build(&scn, &ctx, 0.62, 2, CacheScope::AmbiguousOnly);
        let mut rng = StdRng::seed_from_u64(3);
        let small = scn
            .graph
            .vertices()
            .find(|(_, p)| p.mentions.len() < 4)
            .map(|(v, _)| v)
            .unwrap();
        assert!(eng
            .synthetic_split_vector(&scn, &ctx, small, &mut rng)
            .is_none());
    }

    #[test]
    fn star_features_similar_for_shared_coauthors() {
        let (c, scn) = setup();
        let ctx = ProfileContext::build(&c, 16, 2);
        let eng = SimilarityEngine::build(&scn, &ctx, 0.62, 2, CacheScope::AmbiguousOnly);
        let f1 = eng.star_features(5, &[10, 11, 12]);
        let f2 = eng.star_features(5, &[10, 11, 12]);
        let f3 = eng.star_features(5, &[90, 91, 92]);
        assert!((normalized_kernel(&f1, &f2) - 1.0).abs() < 1e-12);
        assert!(normalized_kernel(&f1, &f3) < 1.0);
    }
}
