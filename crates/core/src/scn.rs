//! Stage 1: Stable Collaboration Network construction (§IV).
//!
//! The SCN assigns every author mention to a vertex. Mentions covered by an
//! η-SCR collapse into shared "stable" vertices (all papers co-authored by a
//! frequently-collaborating name pair are one author on each side); the
//! triangle rule additionally merges SCR endpoints that close a stable
//! triangle. Everything else stays a singleton vertex — the bottom-up
//! default that all same-name authors are distinct.

use rustc_hash::FxHashMap;

use iuad_corpus::{Corpus, Mention, NameId, PaperId};
use iuad_fpgrowth::pairs::frequent_pairs;
use iuad_graph::{AdjGraph, UnionFind, VertexId};
use iuad_par::ParallelConfig;

/// A hypothesised author: a name plus the mentions attributed to it.
#[derive(Debug, Clone)]
pub struct ScnVertex {
    /// The (ambiguous) name this vertex publishes under.
    pub name: NameId,
    /// Mentions assigned to this vertex, in (paper, slot) order.
    pub mentions: Vec<Mention>,
}

impl ScnVertex {
    /// Papers of this vertex (mention papers, deduplicated, ascending).
    pub fn papers(&self) -> Vec<PaperId> {
        let mut ps: Vec<PaperId> = self.mentions.iter().map(|m| m.paper).collect();
        ps.sort_unstable();
        ps.dedup();
        ps
    }
}

/// Edge payload: the papers both endpoints co-authored (`P_uv` of
/// Definition 1) and, if the endpoint names form an η-SCR, its support.
#[derive(Debug, Clone, Default)]
pub struct EdgeData {
    /// Papers shared by the two endpoint vertices.
    pub papers: Vec<PaperId>,
    /// η-SCR support of the endpoint *name* pair; 0 for recovered
    /// (non-stable) relations.
    pub scr_support: u32,
}

/// The stable collaboration network.
#[derive(Debug, Clone)]
pub struct Scn {
    /// The collaboration graph. Edges cover *all* per-paper collaborations
    /// (Definition 1); stable ones carry `scr_support > 0`.
    pub graph: AdjGraph<ScnVertex, EdgeData>,
    /// Mention → vertex assignment (total: every corpus mention appears).
    pub assignment: FxHashMap<Mention, VertexId>,
    /// Vertices grouped by name (ascending vertex id).
    pub by_name: FxHashMap<NameId, Vec<VertexId>>,
    /// Mined η-SCRs: `(name_a, name_b)` with `a < b` → support.
    pub scrs: FxHashMap<(u32, u32), u32>,
    /// The support threshold η used.
    pub eta: u32,
}

impl Scn {
    /// Build the SCN from a corpus with support threshold `eta` (η ≥ 2;
    /// η = 1 would declare every co-authorship stable and collapse the
    /// bottom-up premise). Fully sequential; see [`Scn::build_parallel`].
    pub fn build(corpus: &Corpus, eta: u32) -> Scn {
        Self::build_parallel(corpus, eta, &ParallelConfig::sequential())
    }

    /// [`Scn::build`] with the per-paper preprocessing fanned across
    /// `par.threads` workers. SCR insertion and mention assignment stay
    /// sequential (they fold into shared union-find state in a
    /// deterministic order), so the network is identical at any thread
    /// count.
    pub fn build_parallel(corpus: &Corpus, eta: u32, par: &ParallelConfig) -> Scn {
        let mine = ScnMine::build(corpus, eta, par);
        let scan = mine.scan_mentions(corpus, 0, u32::MAX);
        mine.assemble(corpus, vec![scan])
    }

    /// [`Scn::build_parallel`] with the mention-assignment scan sharded
    /// across contiguous name-id blocks, each block running as one
    /// `iuad-par` job. Bit-identical to the monolithic build: SCR mining
    /// and the triangle-rule proto fold are global (they are inherently
    /// cross-name), each block's scan touches only proto vertices on its
    /// own names (see `ScnMine::scan_mentions`), and the join rebuilds
    /// the final graph in canonical (paper, slot) order exactly as the
    /// monolith does.
    pub fn build_sharded(
        corpus: &Corpus,
        eta: u32,
        plan: &crate::shard::ShardPlan,
        par: &ParallelConfig,
    ) -> Scn {
        let mine = ScnMine::build(corpus, eta, par);
        let jobs: Vec<_> = plan
            .blocks()
            .map(|(lo, hi)| {
                let mine = &mine;
                move || mine.scan_mentions(corpus, lo, hi)
            })
            .collect();
        let scans = iuad_par::parallel_jobs(par, jobs);
        mine.assemble(corpus, scans)
    }

    /// Freeze this network's adjacency as a [`iuad_graph::Csr`] snapshot —
    /// built once per network by every engine build/derivation so the
    /// structural kernels (WL, triangles, balls) walk contiguous sorted
    /// memory. The snapshot does not track later mutations (e.g.
    /// [`crate::Iuad::absorb`] appending vertices).
    pub fn csr(&self) -> iuad_graph::Csr {
        self.graph.csr()
    }

    /// Predicted cluster labels for all mentions of `name`, parallel to
    /// `corpus.mentions_of_name(name)`.
    pub fn labels_of_name(&self, corpus: &Corpus, name: NameId) -> Vec<usize> {
        corpus
            .mentions_of_name(name)
            .iter()
            .map(|m| self.assignment[m].index())
            .collect()
    }

    /// Number of vertices carrying at least one stable (SCR) edge.
    pub fn num_stable_vertices(&self) -> usize {
        self.graph
            .vertices()
            .filter(|&(v, _)| {
                self.graph
                    .neighbors(v)
                    .any(|(_, e)| e.scr_support >= self.eta)
            })
            .count()
    }
}

/// The global (cross-name) part of SCN construction: mined η-SCRs plus the
/// realised proto graph from the stable-triangle fold. Everything downstream
/// of this — the per-mention coverage scan — is name-disjoint and shards
/// freely (see `ScnMine::scan_mentions`).
pub(crate) struct ScnMine {
    /// Per-paper sorted, deduplicated author-name lists.
    name_lists: Vec<Vec<u32>>,
    /// Mined η-SCRs: `(name_a, name_b)` with `a < b` → support.
    scrs: FxHashMap<(u32, u32), u32>,
    /// Each SCR's realised proto edge, oriented (vertex-of-a, vertex-of-b).
    scr_edge: FxHashMap<(u32, u32), (VertexId, VertexId)>,
    /// Number of proto vertices the triangle fold created.
    num_proto: usize,
    eta: u32,
}

/// One block's mention-assignment output: raw proto assignments, proof
/// unions between same-name proto vertices, and the uncovered singletons.
pub(crate) struct MentionScan {
    /// Covered mention → proto vertex id.
    raw: Vec<(Mention, usize)>,
    /// Same-name proto vertices proven identical by a shared mention.
    pending_unions: Vec<(usize, usize)>,
    /// Mentions no SCR covers (future singleton vertices), in scan order.
    uncovered: Vec<Mention>,
}

impl ScnMine {
    /// η-SCR mining plus the sequential SCR-insertion fold with the
    /// stable-triangle rule. The fold walks SCRs strongest-first across
    /// *all* names (a triangle can span any three names), so it stays
    /// global under sharding.
    fn build(corpus: &Corpus, eta: u32, par: &ParallelConfig) -> ScnMine {
        assert!(eta >= 2, "eta must be at least 2");
        // --- η-SCR mining (frequent 2-itemsets over co-author lists) -----
        let name_lists: Vec<Vec<u32>> = iuad_par::parallel_map(par, &corpus.papers, |p| {
            let mut l: Vec<u32> = p.authors.iter().map(|n| n.0).collect();
            l.sort_unstable();
            l.dedup();
            l
        });
        let scrs = frequent_pairs(name_lists.iter().map(Vec::as_slice), eta);

        // --- SCR insertion with the stable-triangle rule ------------------
        // Proto graph: one vertex per (name, stable author hypothesis).
        let mut proto: AdjGraph<NameId, ()> = AdjGraph::new();
        let mut proto_by_name: FxHashMap<u32, Vec<VertexId>> = FxHashMap::default();
        let mut scr_edge: FxHashMap<(u32, u32), (VertexId, VertexId)> = FxHashMap::default();

        // Strongest relations first; ties resolved lexicographically so the
        // construction is deterministic.
        let mut sorted_scrs: Vec<((u32, u32), u32)> = scrs.iter().map(|(&p, &s)| (p, s)).collect();
        sorted_scrs.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

        // Find an existing vertex of `name` that closes a stable triangle
        // with `other`: some neighbour's name c has (other, c) ∈ SCRs.
        let find_triangle_vertex = |proto: &AdjGraph<NameId, ()>,
                                    proto_by_name: &FxHashMap<u32, Vec<VertexId>>,
                                    name: u32,
                                    other: u32|
         -> Option<VertexId> {
            let candidates = proto_by_name.get(&name)?;
            candidates.iter().copied().find(|&v| {
                proto.neighbors(v).any(|(w, _)| {
                    let c = proto.vertex(w).0;
                    let key = if other < c { (other, c) } else { (c, other) };
                    scrs.contains_key(&key)
                })
            })
        };

        for &((a, b), _support) in &sorted_scrs {
            let va = find_triangle_vertex(&proto, &proto_by_name, a, b).unwrap_or_else(|| {
                let v = proto.add_vertex(NameId(a));
                proto_by_name.entry(a).or_default().push(v);
                v
            });
            let vb = find_triangle_vertex(&proto, &proto_by_name, b, a).unwrap_or_else(|| {
                let v = proto.add_vertex(NameId(b));
                proto_by_name.entry(b).or_default().push(v);
                v
            });
            proto.upsert_edge(va, vb, || (), |_| ());
            scr_edge.insert((a, b), (va, vb));
        }

        ScnMine {
            name_lists,
            scrs,
            scr_edge,
            num_proto: proto.num_vertices(),
            eta,
        }
    }

    /// Mention assignment for the mentions whose *own* name lies in
    /// `[name_lo, name_hi)`. Covered mentions go to SCR vertices; a paper
    /// whose mention touches two different SCR vertices of the same name
    /// proves those vertices identical (one person wrote that slot), so
    /// they are queued for union.
    ///
    /// This is the name-disjoint shardable phase: for a mention of name
    /// `a`, `mine` below is always the `a`-side endpoint of the SCR edge,
    /// so every raw assignment and every pending union produced here
    /// involves only proto vertices *of names in this block*. Blocks
    /// therefore write disjoint state, and scanning blocks in any order
    /// (or concurrently) reproduces the monolithic scan exactly.
    fn scan_mentions(&self, corpus: &Corpus, name_lo: u32, name_hi: u32) -> MentionScan {
        let mut scan = MentionScan {
            raw: Vec::new(),
            pending_unions: Vec::new(),
            uncovered: Vec::new(),
        };
        for (p, names) in corpus.papers.iter().zip(&self.name_lists) {
            for (slot, &n) in p.authors.iter().enumerate() {
                let a = n.0;
                if a < name_lo || a >= name_hi {
                    continue;
                }
                let mention = Mention::new(p.id, slot);
                let mut assigned: Option<usize> = None;
                for &b in names.iter().filter(|&&b| b != a) {
                    let key = if a < b { (a, b) } else { (b, a) };
                    if let Some(&(v1, v2)) = self.scr_edge.get(&key) {
                        let mine = if a < b { v1 } else { v2 };
                        match assigned {
                            None => {
                                assigned = Some(mine.index());
                                scan.raw.push((mention, mine.index()));
                            }
                            Some(prev) if prev != mine.index() => {
                                scan.pending_unions.push((prev, mine.index()));
                            }
                            Some(_) => {}
                        }
                    }
                }
                if assigned.is_none() {
                    scan.uncovered.push(mention);
                }
            }
        }
        scan
    }

    /// Join the block scans and rebuild the final network. Singleton ids
    /// never participate in a union, and the rebuild renumbers union-find
    /// roots by first appearance in (paper, slot) mention order, so the
    /// result is independent of block count and block boundaries.
    fn assemble(self, corpus: &Corpus, scans: Vec<MentionScan>) -> Scn {
        let num_uncovered: usize = scans.iter().map(|s| s.uncovered.len()).sum();
        let num_raw: usize = scans.iter().map(|s| s.raw.len()).sum();
        let mut uf = UnionFind::new(self.num_proto + num_uncovered);
        let mut ordered: Vec<(Mention, usize)> = Vec::with_capacity(num_raw + num_uncovered);
        let mut next_singleton = self.num_proto;
        for scan in scans {
            for &(x, y) in &scan.pending_unions {
                uf.union(x, y);
            }
            ordered.extend(scan.raw);
            for m in scan.uncovered {
                ordered.push((m, next_singleton));
                next_singleton += 1;
            }
        }

        // --- Rebuild the final graph ---------------------------------------
        // Canonical root → final vertex.
        let mut final_of_root: FxHashMap<usize, VertexId> = FxHashMap::default();
        let mut graph: AdjGraph<ScnVertex, EdgeData> = AdjGraph::new();
        let mut assignment: FxHashMap<Mention, VertexId> = FxHashMap::default();

        ordered.sort_unstable(); // (paper, slot) order → deterministic ids
        for (mention, raw) in ordered {
            let root = uf.find(raw);
            let name = corpus.name_of(mention);
            let v = *final_of_root.entry(root).or_insert_with(|| {
                graph.add_vertex(ScnVertex {
                    name,
                    mentions: Vec::new(),
                })
            });
            debug_assert_eq!(graph.vertex(v).name, name, "vertex name clash");
            graph.vertex_mut(v).mentions.push(mention);
            assignment.insert(mention, v);
        }

        // Recover all collaborative relations per paper (Definition 1).
        for p in &corpus.papers {
            let vs: Vec<(u32, VertexId)> = p
                .authors
                .iter()
                .enumerate()
                .map(|(slot, &n)| (n.0, assignment[&Mention::new(p.id, slot)]))
                .collect();
            for i in 0..vs.len() {
                for j in (i + 1)..vs.len() {
                    let (na, va) = vs[i];
                    let (nb, vb) = vs[j];
                    if va == vb {
                        continue; // same vertex cannot self-loop
                    }
                    let key = if na < nb { (na, nb) } else { (nb, na) };
                    let support = self.scrs.get(&key).copied().unwrap_or(0);
                    graph.upsert_edge(
                        va,
                        vb,
                        || EdgeData {
                            papers: vec![p.id],
                            scr_support: support,
                        },
                        |e| {
                            if e.papers.last() != Some(&p.id) {
                                e.papers.push(p.id);
                            }
                        },
                    );
                }
            }
        }

        let mut by_name: FxHashMap<NameId, Vec<VertexId>> = FxHashMap::default();
        for (v, payload) in graph.vertices() {
            by_name.entry(payload.name).or_default().push(v);
        }

        Scn {
            graph,
            assignment,
            by_name,
            scrs: self.scrs,
            eta: self.eta,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iuad_corpus::{AuthorId, Paper, VenueId};

    /// Hand-built corpus mirroring the paper's Figure 2 example:
    /// papers p1..p8 over names a..g (ids 0..6).
    fn figure2_corpus() -> Corpus {
        let lists: Vec<Vec<u32>> = vec![
            vec![0, 1, 2, 3], // p1: a b c d
            vec![0, 2, 3],    // p2: a c d
            vec![0, 1, 2],    // p3: a b c
            vec![0, 1, 2],    // p4: a b c
            vec![1, 4],       // p5: b e
            vec![1, 4],       // p6: b e
            vec![1, 5],       // p7: b f
            vec![1, 6],       // p8: b g
        ];
        let papers: Vec<Paper> = lists
            .iter()
            .enumerate()
            .map(|(i, l)| Paper {
                id: PaperId::from(i),
                authors: l.iter().map(|&n| NameId(n)).collect(),
                title: format!("paper {i}"),
                venue: VenueId(0),
                year: 2000 + i as u16,
            })
            .collect();
        // Ground truth irrelevant for SCN structure tests: one author per name
        // except b, which is two authors (b0 = stable-with-a/c, b1 = with e).
        let truth: Vec<Vec<AuthorId>> = papers
            .iter()
            .map(|p| p.authors.iter().map(|n| AuthorId(n.0)).collect())
            .collect();
        Corpus {
            papers,
            name_strings: (0..7).map(|i| format!("name{i}")).collect(),
            venue_strings: vec!["v0".into()],
            truth,
            author_names: (0..7).map(NameId).collect(),
            config: None,
        }
    }

    #[test]
    fn figure2_scrs_mined() {
        let c = figure2_corpus();
        let scn = Scn::build(&c, 2);
        // The paper lists (a,b),(a,c),(a,d),(b,c),(b,e),(c,d) as 2-SCRs.
        let expect = [(0u32, 1u32), (0, 2), (0, 3), (1, 2), (1, 4), (2, 3)];
        for pair in expect {
            assert!(scn.scrs.contains_key(&pair), "missing SCR {pair:?}");
        }
        assert_eq!(scn.scrs.len(), 6);
    }

    #[test]
    fn figure2_triangle_merges_a_b_c_d() {
        let c = figure2_corpus();
        let scn = Scn::build(&c, 2);
        // a, b, c, d each appear as exactly ONE stable vertex: the triangle
        // rule unifies (a,b),(a,c),(b,c) and then (a,d),(c,d).
        for name in [0u32, 2, 3] {
            let vs = &scn.by_name[&NameId(name)];
            assert_eq!(vs.len(), 1, "name {name} should be one vertex: {vs:?}");
        }
    }

    #[test]
    fn figure2_b_splits_into_stable_and_singletons() {
        let c = figure2_corpus();
        let scn = Scn::build(&c, 2);
        // b: one vertex for {p1,p3,p4} (with a,c), one for {p5,p6} (with e),
        // and singletons for p7, p8 → 4 vertices.
        let vs = &scn.by_name[&NameId(1)];
        assert_eq!(vs.len(), 4, "vertices of b: {vs:?}");
        let mut sizes: Vec<usize> = vs
            .iter()
            .map(|&v| scn.graph.vertex(v).mentions.len())
            .collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 1, 2, 3]);
    }

    #[test]
    fn every_mention_assigned_exactly_once() {
        let c = figure2_corpus();
        let scn = Scn::build(&c, 2);
        assert_eq!(scn.assignment.len(), c.num_mentions());
        // Vertex mention lists partition the mentions.
        let total: usize = scn.graph.vertices().map(|(_, v)| v.mentions.len()).sum();
        assert_eq!(total, c.num_mentions());
    }

    #[test]
    fn vertices_are_name_pure() {
        let c = figure2_corpus();
        let scn = Scn::build(&c, 2);
        for (_, payload) in scn.graph.vertices() {
            for m in &payload.mentions {
                assert_eq!(c.name_of(*m), payload.name);
            }
        }
    }

    #[test]
    fn stable_edges_marked_with_support() {
        let c = figure2_corpus();
        let scn = Scn::build(&c, 2);
        // a—b edge exists with support 3 (p1, p3, p4).
        let va = scn.by_name[&NameId(0)][0];
        let stable_b = scn.by_name[&NameId(1)]
            .iter()
            .copied()
            .find(|&v| scn.graph.vertex(v).mentions.len() == 3)
            .unwrap();
        let e = scn.graph.edge(va, stable_b).expect("a—b edge");
        assert_eq!(e.scr_support, 3);
        assert_eq!(e.papers.len(), 3);
    }

    #[test]
    fn recovered_edges_have_zero_support() {
        let c = figure2_corpus();
        let scn = Scn::build(&c, 2);
        // b—f co-occur once (p7): recovered edge with support 0.
        let vf = scn.by_name[&NameId(5)][0];
        let (vb_p7, _) = scn
            .graph
            .neighbors(vf)
            .next()
            .expect("f connects to b via p7");
        let e = scn.graph.edge(vf, vb_p7).unwrap();
        assert_eq!(e.scr_support, 0);
        assert_eq!(e.papers, vec![PaperId(6)]);
    }

    #[test]
    fn higher_eta_reduces_stable_structure() {
        let c = figure2_corpus();
        let scn2 = Scn::build(&c, 2);
        let scn3 = Scn::build(&c, 3);
        assert!(scn3.scrs.len() < scn2.scrs.len());
        // At η=3 only (a,b),(a,c),(b,c) remain (support 3).
        assert_eq!(scn3.scrs.len(), 3);
    }

    #[test]
    #[should_panic(expected = "eta")]
    fn eta_one_rejected() {
        let _ = Scn::build(&figure2_corpus(), 1);
    }

    /// The sharded build must reproduce the monolithic network exactly —
    /// same assignment, same by_name groups — at any block count,
    /// including blocks that slice straight through SCR name pairs.
    #[test]
    fn sharded_build_matches_monolith() {
        let cases = [
            figure2_corpus(),
            Corpus::generate(&iuad_corpus::CorpusConfig {
                num_authors: 150,
                num_papers: 600,
                seed: 7,
                ..Default::default()
            }),
        ];
        let par = ParallelConfig::sequential();
        for c in &cases {
            let mono = Scn::build(c, 2);
            for blocks in [1usize, 2, 3, 7] {
                let plan = crate::shard::ShardPlan::for_corpus(c, blocks);
                let sharded = Scn::build_sharded(c, 2, &plan, &par);
                assert_eq!(sharded.assignment, mono.assignment, "blocks = {blocks}");
                assert_eq!(
                    sharded.graph.num_vertices(),
                    mono.graph.num_vertices(),
                    "blocks = {blocks}"
                );
                assert_eq!(
                    sharded.graph.num_edges(),
                    mono.graph.num_edges(),
                    "blocks = {blocks}"
                );
            }
        }
    }

    #[test]
    fn generated_corpus_builds_consistently() {
        let c = Corpus::generate(&iuad_corpus::CorpusConfig {
            num_authors: 200,
            num_papers: 800,
            seed: 13,
            ..Default::default()
        });
        let scn = Scn::build(&c, 2);
        assert_eq!(scn.assignment.len(), c.num_mentions());
        // SCN precision premise: grouped mentions of one vertex mostly share
        // a true author. Check the worst case is bounded: each vertex's
        // mentions must at least share the name (already asserted) and the
        // majority-truth fraction should be high.
        let mut pure = 0usize;
        let mut total = 0usize;
        for (_, payload) in scn.graph.vertices() {
            if payload.mentions.len() < 2 {
                continue;
            }
            total += 1;
            let mut counts: FxHashMap<u32, usize> = FxHashMap::default();
            for m in &payload.mentions {
                *counts.entry(c.truth_of(*m).0).or_insert(0) += 1;
            }
            let max = counts.values().max().copied().unwrap_or(0);
            if max == payload.mentions.len() {
                pure += 1;
            }
        }
        assert!(
            total == 0 || pure as f64 / total as f64 > 0.9,
            "stable vertices should be nearly pure: {pure}/{total}"
        );
    }
}
