//! Incremental single-paper disambiguation (§V-E).
//!
//! A newly published paper's author mention is treated as an isolated
//! vertex. We compute its γ-vector against every existing vertex with the
//! same name, score with the already-fitted mixture, and assign to the
//! arg-max vertex if its score reaches δ — otherwise the mention founds a
//! new author. No retraining happens; this is the paper's headline
//! efficiency property (< 50 ms per paper in their evaluation).

use iuad_corpus::{Mention, NameId, Paper};
use iuad_graph::{wl::SparseFeatures, VertexId};
use iuad_mixture::TwoComponentMixture;

use crate::profile::{ProfileContext, VertexProfile};
use crate::scn::Scn;
use crate::similarity::{SimilarityEngine, NUM_SIMILARITIES};

/// Outcome of disambiguating one new mention.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Decision {
    /// The mention belongs to this existing vertex (its matching score
    /// reached δ and was the maximum, conditions (1)+(2) of §V-E).
    Existing {
        /// The matched vertex in the global collaboration network.
        vertex: VertexId,
        /// Its posterior log-odds score.
        score: f64,
    },
    /// No existing vertex reached δ: the mention founds a new author.
    NewAuthor {
        /// The best (insufficient) score observed, if any candidate existed.
        best_score: Option<f64>,
    },
}

/// The evidence one new mention carries: its transient profile plus the
/// star-graph structural features. The decision rule *and* the absorb path
/// both consume it, so a streaming ingest loop computes it once per slot
/// ([`crate::Iuad::ingest_batch`]) instead of once per use.
#[derive(Debug, Clone)]
pub struct MentionEvidence {
    /// Single-paper profile of the new mention
    /// ([`VertexProfile::from_new_paper`]).
    pub profile: VertexProfile,
    /// WL features of the mention's collaboration star.
    pub wl: SparseFeatures,
    /// Name triangles through the mention (its co-authors form a clique),
    /// sorted `(min, max)` pairs, deduplicated.
    pub tris: Vec<(u32, u32)>,
}

impl MentionEvidence {
    /// Compute the evidence for the author at `slot` of a new `paper`.
    pub fn gather(
        ctx: &ProfileContext,
        engine: &SimilarityEngine,
        paper: &Paper,
        slot: usize,
    ) -> MentionEvidence {
        let name = paper.authors[slot];
        let profile = VertexProfile::from_new_paper(name, paper, ctx);
        let coauthors: Vec<u32> = paper
            .authors
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != slot)
            .map(|(_, n)| n.0)
            .collect();
        let wl = engine.star_features(name.0, &coauthors);
        // Co-authors of one paper form a clique, so every pair of the new
        // mention's co-authors is a triangle through it.
        let mut tris: Vec<(u32, u32)> = Vec::new();
        for i in 0..coauthors.len() {
            for j in (i + 1)..coauthors.len() {
                let (a, b) = (coauthors[i], coauthors[j]);
                tris.push((a.min(b), a.max(b)));
            }
        }
        tris.sort_unstable();
        tris.dedup();
        MentionEvidence { profile, wl, tris }
    }
}

/// The decision rule of §V-E over precomputed evidence: arg-max posterior
/// log-odds across `candidates`, matched only if the best score reaches δ.
pub fn decide_with_evidence(
    network: &Scn,
    ctx: &ProfileContext,
    engine: &SimilarityEngine,
    model: &TwoComponentMixture,
    delta: f64,
    evidence: &MentionEvidence,
    candidates: &[VertexId],
) -> Decision {
    let features: Vec<usize> = (0..NUM_SIMILARITIES).collect();
    let mut best: Option<(VertexId, f64)> = None;
    for &v in candidates {
        let gamma = engine.similarity_against(
            network,
            ctx,
            &evidence.profile,
            &evidence.wl,
            &evidence.tris,
            v,
        );
        let projected: Vec<f64> = features.iter().map(|&f| gamma[f]).collect();
        let score = model.log_odds(&projected);
        if best.is_none_or(|(_, s)| score > s) {
            best = Some((v, score));
        }
    }
    match best {
        Some((v, s)) if s >= delta => Decision::Existing {
            vertex: v,
            score: s,
        },
        Some((_, s)) => Decision::NewAuthor {
            best_score: Some(s),
        },
        None => Decision::NewAuthor { best_score: None },
    }
}

/// Disambiguate the author at `slot` of a new `paper` against `network`.
pub fn disambiguate_mention(
    network: &Scn,
    ctx: &ProfileContext,
    engine: &SimilarityEngine,
    model: &TwoComponentMixture,
    delta: f64,
    paper: &Paper,
    slot: usize,
) -> Decision {
    let name = paper.authors[slot];
    let Some(candidates) = network.by_name.get(&name) else {
        return Decision::NewAuthor { best_score: None };
    };
    let evidence = MentionEvidence::gather(ctx, engine, paper, slot);
    decide_with_evidence(network, ctx, engine, model, delta, &evidence, candidates)
}

/// Fold a decided mention into `network` and `engine` without refitting:
/// append the mention to the matched vertex (founding a fresh vertex for
/// [`Decision::NewAuthor`]) and absorb its precomputed single-paper profile
/// into the engine. Returns the vertex that received the mention, so a
/// serving tier can track the touched set for its next epoch publish.
pub fn absorb_mention(
    network: &mut Scn,
    engine: &mut SimilarityEngine,
    paper: &Paper,
    slot: usize,
    decision: Decision,
    delta_profile: &VertexProfile,
) -> VertexId {
    let mention = Mention::new(paper.id, slot);
    let name = paper.authors[slot];
    let v = match decision {
        Decision::Existing { vertex, .. } => vertex,
        Decision::NewAuthor { .. } => {
            let v = network.graph.add_vertex(crate::scn::ScnVertex {
                name,
                mentions: Vec::new(),
            });
            network.by_name.entry(name).or_default().push(v);
            v
        }
    };
    network.graph.vertex_mut(v).mentions.push(mention);
    network.assignment.insert(mention, v);
    engine.absorb(v, delta_profile);
    v
}

/// Convenience: disambiguate every slot of a new paper independently.
pub fn disambiguate_paper(
    network: &Scn,
    ctx: &ProfileContext,
    engine: &SimilarityEngine,
    model: &TwoComponentMixture,
    delta: f64,
    paper: &Paper,
) -> Vec<(NameId, Decision)> {
    (0..paper.authors.len())
        .map(|slot| {
            (
                paper.authors[slot],
                disambiguate_mention(network, ctx, engine, model, delta, paper, slot),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gcn::{merge_network, Gcn, GcnConfig};
    use crate::similarity::CacheScope;
    use iuad_corpus::{Corpus, CorpusConfig};

    struct Fixture {
        corpus: Corpus,
        network: Scn,
        ctx: ProfileContext,
        engine: SimilarityEngine,
        model: TwoComponentMixture,
        held_out: Vec<(Paper, Vec<iuad_corpus::AuthorId>)>,
    }

    fn fixture() -> Fixture {
        let full = Corpus::generate(&CorpusConfig {
            num_authors: 250,
            num_papers: 1200,
            seed: 37,
            ..Default::default()
        });
        let (base, held_out) = full.split_tail(60);
        let scn = Scn::build(&base, 2);
        let ctx = ProfileContext::build(&base, 16, 5);
        let engine = SimilarityEngine::build(&scn, &ctx, 0.62, 2, CacheScope::AmbiguousOnly);
        let gcn = Gcn::build(&scn, &ctx, &engine, &GcnConfig::default());
        let (network, _) = merge_network(&base, &scn, &gcn.cluster_of_vertex);
        let net_engine =
            SimilarityEngine::build(&network, &ctx, 0.62, 2, CacheScope::AmbiguousOnly);
        Fixture {
            corpus: base,
            network,
            ctx,
            engine: net_engine,
            model: gcn.model.expect("model fitted"),
            held_out,
        }
    }

    #[test]
    fn decisions_are_well_formed() {
        let f = fixture();
        for (paper, _) in f.held_out.iter().take(20) {
            for slot in 0..paper.authors.len() {
                let d =
                    disambiguate_mention(&f.network, &f.ctx, &f.engine, &f.model, 0.0, paper, slot);
                match d {
                    Decision::Existing { vertex, score } => {
                        assert!(score.is_finite());
                        assert_eq!(f.network.graph.vertex(vertex).name, paper.authors[slot]);
                    }
                    Decision::NewAuthor { best_score } => {
                        if let Some(s) = best_score {
                            assert!(s < 0.0);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn unknown_name_founds_new_author() {
        let f = fixture();
        let mut paper = f.held_out[0].0.clone();
        // A name id beyond anything in the corpus.
        paper.authors[0] = NameId(u32::MAX - 1);
        let d = disambiguate_mention(&f.network, &f.ctx, &f.engine, &f.model, 0.0, &paper, 0);
        assert_eq!(d, Decision::NewAuthor { best_score: None });
    }

    #[test]
    fn higher_delta_creates_more_new_authors() {
        let f = fixture();
        let count_new = |delta: f64| -> usize {
            f.held_out
                .iter()
                .take(30)
                .flat_map(|(p, _)| (0..p.authors.len()).map(move |s| (p, s)))
                .filter(|(p, s)| {
                    matches!(
                        disambiguate_mention(&f.network, &f.ctx, &f.engine, &f.model, delta, p, *s),
                        Decision::NewAuthor { .. }
                    )
                })
                .count()
        };
        assert!(count_new(1e6) >= count_new(0.0));
        assert!(count_new(0.0) >= count_new(-1e6));
    }

    #[test]
    fn incremental_assignment_is_frequently_correct() {
        // The accuracy bar is modest: a single paper carries limited
        // information (the paper itself reports a small drop, Table VI).
        let f = fixture();
        let mut correct = 0usize;
        let mut total = 0usize;
        for (paper, truth) in &f.held_out {
            for (slot, slot_truth) in truth.iter().enumerate().take(paper.authors.len()) {
                let d =
                    disambiguate_mention(&f.network, &f.ctx, &f.engine, &f.model, 0.0, paper, slot);
                let Decision::Existing { vertex, .. } = d else {
                    continue;
                };
                // Majority truth of the matched vertex.
                let mut counts = rustc_hash::FxHashMap::default();
                for m in &f.network.graph.vertex(vertex).mentions {
                    *counts.entry(f.corpus.truth_of(*m).0).or_insert(0usize) += 1;
                }
                let major = counts
                    .into_iter()
                    .max_by_key(|&(a, n)| (n, std::cmp::Reverse(a)))
                    .map(|(a, _)| a);
                total += 1;
                if major == Some(slot_truth.0) {
                    correct += 1;
                }
            }
        }
        assert!(total > 20, "too few matched decisions: {total}");
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.5, "incremental accuracy too low: {acc:.3}");
    }
}
