//! Name-block sharding for the million-paper fit.
//!
//! Disambiguation is bottom-up and never compares mentions across name
//! blocks: Stage 1 assigns a mention only to vertices of its own name, and
//! Stage 2 scores candidate pairs strictly within one name group. The
//! corpus therefore partitions embarrassingly by name — only η-SCR mining,
//! the stable-triangle proto fold, EM training, and the final merge/derive
//! passes are global. A [`ShardPlan`] captures that partition as contiguous
//! ascending name-id ranges, which is what keeps the sharded fit
//! bit-identical to the monolith: concatenating per-block outputs in block
//! order reproduces the monolith's ascending-name iteration order exactly.

use iuad_corpus::Corpus;

/// A partition of the name-id space `0..num_names` into contiguous blocks.
///
/// Invariants (property-tested in `tests/properties.rs`):
/// - **exhaustive**: every name id lies in exactly one block;
/// - **name-disjoint**: blocks are disjoint half-open ranges;
/// - **ordered**: block `i` covers strictly smaller name ids than block
///   `i + 1`, so per-block outputs concatenate in ascending name order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// `bounds[i]..bounds[i + 1]` is block `i`; `bounds[0] == 0` and
    /// `bounds.last() == num_names`.
    bounds: Vec<u32>,
}

impl ShardPlan {
    /// Partition `0..weights.len()` name ids into at most `num_blocks`
    /// contiguous ranges of roughly equal total weight (greedy linear
    /// sweep). Zero-weight prefixes attach to the following block; empty
    /// blocks are never emitted, so the plan may hold fewer than
    /// `num_blocks` blocks for small corpora.
    pub fn from_weights(weights: &[u64], num_blocks: usize) -> ShardPlan {
        let num_names = weights.len();
        let num_blocks = num_blocks.max(1);
        let total: u64 = weights.iter().sum();
        let mut bounds = vec![0u32];
        if num_names > 0 {
            // Ideal cumulative cut points: block i ends once cumulative
            // weight reaches (i + 1) * total / num_blocks.
            let mut acc: u64 = 0;
            let mut cut = 1u64;
            for (n, &w) in weights.iter().enumerate() {
                acc += w;
                // Close blocks whose quota this name filled. Strictly less
                // than `num_names` names remain unclaimed after n, so a
                // bound at n + 1 never leaves an empty trailing block.
                while cut < num_blocks as u64
                    && acc * num_blocks as u64 >= cut * total
                    && total > 0
                    && (n + 1) < num_names
                {
                    bounds.push((n + 1) as u32);
                    cut += 1;
                }
            }
            bounds.push(num_names as u32);
            bounds.dedup();
        }
        ShardPlan { bounds }
    }

    /// Plan for `corpus` with blocks balanced by estimated per-name work:
    /// `(1 + mentions)²`, a proxy for the quadratic candidate-pair cost
    /// that dominates Stage 2 (and an upper bound on the linear Stage-1
    /// scan cost).
    pub fn for_corpus(corpus: &Corpus, num_blocks: usize) -> ShardPlan {
        let mut mentions = vec![0u64; corpus.num_names()];
        for p in &corpus.papers {
            for &n in &p.authors {
                mentions[n.index()] += 1;
            }
        }
        let weights: Vec<u64> = mentions.iter().map(|&m| (1 + m) * (1 + m)).collect();
        Self::from_weights(&weights, num_blocks)
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.bounds.len().saturating_sub(1)
    }

    /// Iterate the half-open name-id ranges `[lo, hi)` in ascending order.
    pub fn blocks(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.bounds.windows(2).map(|w| (w[0], w[1]))
    }

    /// The block containing `name`, if any.
    pub fn block_of(&self, name: u32) -> Option<usize> {
        if self.num_blocks() == 0 || name >= *self.bounds.last().unwrap() {
            return None;
        }
        Some(self.bounds.partition_point(|&b| b <= name) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_invariants(plan: &ShardPlan, num_names: usize) {
        let blocks: Vec<(u32, u32)> = plan.blocks().collect();
        if num_names == 0 {
            assert_eq!(plan.num_blocks(), 0);
            return;
        }
        assert_eq!(blocks.first().unwrap().0, 0);
        assert_eq!(blocks.last().unwrap().1, num_names as u32);
        for w in blocks.windows(2) {
            assert_eq!(w[0].1, w[1].0, "blocks must tile contiguously");
        }
        for &(lo, hi) in &blocks {
            assert!(lo < hi, "no empty blocks");
        }
        for n in 0..num_names as u32 {
            let i = plan.block_of(n).expect("every name in some block");
            assert!(blocks[i].0 <= n && n < blocks[i].1);
        }
    }

    #[test]
    fn uniform_weights_split_evenly() {
        let plan = ShardPlan::from_weights(&[1; 12], 4);
        check_invariants(&plan, 12);
        assert_eq!(plan.num_blocks(), 4);
        let sizes: Vec<u32> = plan.blocks().map(|(lo, hi)| hi - lo).collect();
        assert_eq!(sizes, vec![3, 3, 3, 3]);
    }

    #[test]
    fn heavy_head_gets_its_own_block() {
        let plan = ShardPlan::from_weights(&[100, 1, 1, 1, 1, 1], 3);
        check_invariants(&plan, 6);
        assert_eq!(plan.blocks().next().unwrap(), (0, 1));
    }

    #[test]
    fn more_blocks_than_names_collapses() {
        let plan = ShardPlan::from_weights(&[1, 1], 8);
        check_invariants(&plan, 2);
        assert!(plan.num_blocks() <= 2);
    }

    #[test]
    fn zero_total_weight_is_one_block() {
        let plan = ShardPlan::from_weights(&[0, 0, 0], 4);
        check_invariants(&plan, 3);
        assert_eq!(plan.num_blocks(), 1);
    }

    #[test]
    fn empty_name_space() {
        let plan = ShardPlan::from_weights(&[], 4);
        check_invariants(&plan, 0);
        assert_eq!(plan.block_of(0), None);
    }

    #[test]
    fn single_block_spans_everything() {
        let plan = ShardPlan::from_weights(&[5, 1, 9, 2], 1);
        check_invariants(&plan, 4);
        assert_eq!(plan.num_blocks(), 1);
        assert_eq!(plan.blocks().next().unwrap(), (0, 4));
    }
}
