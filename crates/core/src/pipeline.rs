//! The end-to-end IUAD pipeline (Algorithm 1): SCN → GCN → merged network,
//! plus the incremental interface.

use rustc_hash::FxHashMap;

use iuad_corpus::{Corpus, Mention, NameId, Paper};
use iuad_par::ParallelConfig;

use crate::gcn::{merge_network, Gcn, GcnConfig};
use crate::incremental::{
    absorb_mention, decide_with_evidence, disambiguate_mention, Decision, MentionEvidence,
};
use crate::profile::ProfileContext;
use crate::scn::Scn;
use crate::similarity::{CacheScope, SimilarityEngine};

/// Full pipeline configuration.
#[derive(Debug, Clone)]
pub struct IuadConfig {
    /// η-SCR support threshold (Stage 1).
    pub eta: u32,
    /// Stage-2 settings (δ, sampling, EM).
    pub gcn: GcnConfig,
    /// Keyword embedding dimensionality.
    pub embedding_dim: usize,
    /// Seed for embedding training.
    pub embedding_seed: u64,
    /// γ₄ decay factor α (paper: 0.62).
    pub alpha: f64,
    /// WL iterations / ego radius h.
    pub wl_iters: usize,
    /// Thread fan-out for the similarity and scoring hot paths. The default
    /// is single-threaded, keeping seeded runs bit-for-bit reproducible
    /// without opting in; any thread count produces the identical network
    /// (see `tests/determinism.rs`).
    pub parallel: ParallelConfig,
}

impl Default for IuadConfig {
    fn default() -> Self {
        Self {
            eta: 2,
            gcn: GcnConfig::default(),
            embedding_dim: 32,
            embedding_seed: 101,
            alpha: 0.62,
            wl_iters: 2,
            parallel: ParallelConfig::sequential(),
        }
    }
}

/// A fitted IUAD pipeline: both stages plus everything the incremental
/// interface needs.
#[derive(Debug)]
pub struct Iuad {
    /// The configuration used.
    pub config: IuadConfig,
    /// Corpus-level context (embeddings, frequencies).
    pub ctx: ProfileContext,
    /// Stage-1 network (pre-merge); kept for the two-stage analysis (RQ2).
    pub scn: Scn,
    /// Stage-2 result (model + merge decisions).
    pub gcn: Gcn,
    /// The merged global collaboration network.
    pub network: Scn,
    /// Similarity caches over `network` (for incremental queries).
    engine: SimilarityEngine,
}

impl Iuad {
    /// Run both stages on a corpus. With `config.parallel.threads > 1` the
    /// O(n²) kernels — per-vertex feature caching, pairwise γ-similarity,
    /// and pair scoring — fan out across worker threads; the fitted result
    /// is identical at any thread count.
    pub fn fit(corpus: &Corpus, config: &IuadConfig) -> Iuad {
        let par = &config.parallel;
        let ctx = ProfileContext::build_parallel(
            corpus,
            config.embedding_dim,
            config.embedding_seed,
            par,
        );
        let scn = Scn::build_parallel(corpus, config.eta, par);
        let stage2_engine = SimilarityEngine::build_parallel(
            &scn,
            &ctx,
            config.alpha,
            config.wl_iters,
            CacheScope::AmbiguousOnly,
            par,
        );
        let gcn = Gcn::build_parallel(&scn, &ctx, &stage2_engine, &config.gcn, par);
        let (network, plan) = merge_network(corpus, &scn, &gcn.cluster_of_vertex);
        // Derive the post-merge engine from the Stage-2 engine instead of
        // rebuilding it from scratch: only the dirty region around
        // coalesced clusters is recomputed, and the result is bit-identical
        // to a full rebuild (checked below in debug builds, and per
        // scenario by the conformance harness).
        let engine = SimilarityEngine::derive(
            stage2_engine,
            &plan,
            &network,
            &ctx,
            CacheScope::AmbiguousOnly,
            par,
        );
        #[cfg(debug_assertions)]
        {
            let rebuilt = SimilarityEngine::build_parallel(
                &network,
                &ctx,
                config.alpha,
                config.wl_iters,
                CacheScope::AmbiguousOnly,
                par,
            );
            if let Some(diff) = engine.diff_from(&rebuilt) {
                panic!("derived engine diverged from full rebuild: {diff}");
            }
        }
        Iuad {
            config: config.clone(),
            ctx,
            scn,
            gcn,
            network,
            engine,
        }
    }

    /// Run both stages sharded across `num_blocks` name-disjoint blocks
    /// (see [`crate::shard::ShardPlan`]). Every per-name stage — the SCN
    /// mention scan, similarity-cache extraction, candidate-pair scoring,
    /// and per-name clustering — fans out one job per block; the global
    /// passes (η-SCR mining, EM training, merge, derive) are unchanged.
    /// The fitted result is **bit-identical** to [`Iuad::fit`] at any block
    /// count (pinned per scenario by the `sharded-fit-matches-monolith`
    /// invariant), while the peak working set per worker shrinks to one
    /// block's share of the name space.
    pub fn fit_sharded(corpus: &Corpus, config: &IuadConfig, num_blocks: usize) -> Iuad {
        let par = &config.parallel;
        let plan = crate::shard::ShardPlan::for_corpus(corpus, num_blocks);
        let ctx = ProfileContext::build_parallel(
            corpus,
            config.embedding_dim,
            config.embedding_seed,
            par,
        );
        let scn = Scn::build_sharded(corpus, config.eta, &plan, par);
        let stage2_engine = SimilarityEngine::build_sharded(
            &scn,
            &ctx,
            config.alpha,
            config.wl_iters,
            CacheScope::AmbiguousOnly,
            &plan,
            par,
        );
        let gcn = Gcn::build_sharded(&scn, &ctx, &stage2_engine, &config.gcn, &plan, par);
        let (network, merge_plan) = merge_network(corpus, &scn, &gcn.cluster_of_vertex);
        let engine = SimilarityEngine::derive(
            stage2_engine,
            &merge_plan,
            &network,
            &ctx,
            CacheScope::AmbiguousOnly,
            par,
        );
        Iuad {
            config: config.clone(),
            ctx,
            scn,
            gcn,
            network,
            engine,
        }
    }

    /// Final mention → author-cluster assignment (cluster id = vertex index
    /// in [`Iuad::network`]).
    pub fn assignments(&self) -> FxHashMap<Mention, usize> {
        self.network
            .assignment
            .iter()
            .map(|(&m, &v)| (m, v.index()))
            .collect()
    }

    /// Stage-1-only assignment (for the RQ2 two-stage comparison).
    pub fn stage1_assignments(&self) -> FxHashMap<Mention, usize> {
        self.scn
            .assignment
            .iter()
            .map(|(&m, &v)| (m, v.index()))
            .collect()
    }

    /// Predicted labels for the mentions of `name` (parallel to
    /// `corpus.mentions_of_name(name)`), after both stages.
    pub fn labels_of_name(&self, corpus: &Corpus, name: NameId) -> Vec<usize> {
        corpus
            .mentions_of_name(name)
            .iter()
            .map(|m| self.network.assignment[m].index())
            .collect()
    }

    /// Incrementally disambiguate the author at `slot` of a new paper
    /// against the fitted network (§V-E). Returns
    /// [`Decision::NewAuthor`] when no fitted model exists (corpus had no
    /// ambiguity) or no candidate reaches δ.
    pub fn disambiguate(&self, paper: &Paper, slot: usize) -> Decision {
        let Some(model) = &self.gcn.model else {
            return Decision::NewAuthor { best_score: None };
        };
        disambiguate_mention(
            &self.network,
            &self.ctx,
            &self.engine,
            model,
            self.config.gcn.delta,
            paper,
            slot,
        )
    }

    /// Incrementally disambiguate every slot of a new paper against the
    /// fitted network — the paper-level face of [`Iuad::disambiguate`],
    /// delegating to [`crate::incremental::disambiguate_paper`] so the two
    /// entry points stay behaviourally identical (asserted per scenario by
    /// the conformance harness).
    pub fn disambiguate_paper(&self, paper: &Paper) -> Vec<(NameId, Decision)> {
        let Some(model) = &self.gcn.model else {
            return paper
                .authors
                .iter()
                .map(|&n| (n, Decision::NewAuthor { best_score: None }))
                .collect();
        };
        crate::incremental::disambiguate_paper(
            &self.network,
            &self.ctx,
            &self.engine,
            model,
            self.config.gcn.delta,
            paper,
        )
    }

    /// Fold a disambiguated mention into the network *without* refitting:
    /// appends the mention to the matched vertex (or a fresh vertex) so that
    /// subsequent incremental queries see it. Structural caches are not
    /// rebuilt — consistent with the paper's "no retraining" claim.
    pub fn absorb(&mut self, paper: &Paper, slot: usize, decision: Decision) {
        let name = paper.authors[slot];
        let delta = crate::profile::VertexProfile::from_new_paper(name, paper, &self.ctx);
        absorb_mention(
            &mut self.network,
            &mut self.engine,
            paper,
            slot,
            decision,
            &delta,
        );
    }

    /// Stream a batch of papers through decide-then-absorb, slot by slot.
    /// Bit-identical to the paper-at-a-time loop
    /// (`disambiguate` + `absorb` per slot, pinned in
    /// `tests/determinism.rs`), but the per-slot evidence — transient
    /// profile, star WL features, clique triangles — is computed once and
    /// shared between the decision and the absorb, which halves the
    /// per-mention profile work on the daemon's ingest path.
    pub fn ingest_batch(&mut self, papers: &[Paper]) -> Vec<Vec<(NameId, Decision)>> {
        papers
            .iter()
            .map(|paper| {
                (0..paper.authors.len())
                    .map(|slot| {
                        let name = paper.authors[slot];
                        let evidence =
                            MentionEvidence::gather(&self.ctx, &self.engine, paper, slot);
                        let decision = match &self.gcn.model {
                            Some(model) => match self.network.by_name.get(&name) {
                                Some(candidates) => decide_with_evidence(
                                    &self.network,
                                    &self.ctx,
                                    &self.engine,
                                    model,
                                    self.config.gcn.delta,
                                    &evidence,
                                    candidates,
                                ),
                                None => Decision::NewAuthor { best_score: None },
                            },
                            None => Decision::NewAuthor { best_score: None },
                        };
                        absorb_mention(
                            &mut self.network,
                            &mut self.engine,
                            paper,
                            slot,
                            decision,
                            &evidence.profile,
                        );
                        (name, decision)
                    })
                    .collect()
            })
            .collect()
    }

    /// Read-only access to the similarity caches over [`Iuad::network`],
    /// for serving layers that snapshot the fitted state.
    pub fn engine(&self) -> &SimilarityEngine {
        &self.engine
    }

    /// Decompose the fitted pipeline into owned parts. The serving tier
    /// needs to move the engine through [`SimilarityEngine::derive`] at
    /// each epoch publish, which consumes it by value — impossible through
    /// the private field.
    pub fn into_state(self) -> FittedState {
        FittedState {
            config: self.config,
            ctx: self.ctx,
            scn: self.scn,
            gcn: self.gcn,
            network: self.network,
            engine: self.engine,
        }
    }
}

/// A fitted pipeline decomposed into owned parts (see [`Iuad::into_state`]).
#[derive(Debug)]
pub struct FittedState {
    /// The configuration used.
    pub config: IuadConfig,
    /// Corpus-level context (embeddings, frequencies).
    pub ctx: ProfileContext,
    /// Stage-1 network (pre-merge).
    pub scn: Scn,
    /// Stage-2 result (model + merge decisions).
    pub gcn: Gcn,
    /// The merged global collaboration network.
    pub network: Scn,
    /// Similarity caches over `network`.
    pub engine: SimilarityEngine,
}

#[cfg(test)]
mod tests {
    use super::*;
    use iuad_corpus::CorpusConfig;
    use iuad_eval::{pairwise_confusion, Confusion};

    fn corpus() -> Corpus {
        Corpus::generate(&CorpusConfig {
            num_authors: 250,
            num_papers: 1000,
            seed: 41,
            ..Default::default()
        })
    }

    fn eval_confusion(
        corpus: &Corpus,
        labels: &FxHashMap<Mention, usize>,
        min_vertices: usize,
        iuad: &Iuad,
    ) -> Confusion {
        let mut conf = Confusion::default();
        for (name, vs) in &iuad.scn.by_name {
            if vs.len() < min_vertices {
                continue;
            }
            let mentions = corpus.mentions_of_name(*name);
            let truth: Vec<u32> = mentions.iter().map(|m| corpus.truth_of(*m).0).collect();
            let pred: Vec<usize> = mentions.iter().map(|m| labels[m]).collect();
            conf.add(pairwise_confusion(&pred, &truth));
        }
        conf
    }

    #[test]
    fn full_pipeline_runs_and_assigns_everything() {
        let c = corpus();
        let iuad = Iuad::fit(&c, &IuadConfig::default());
        assert_eq!(iuad.assignments().len(), c.num_mentions());
        assert_eq!(iuad.stage1_assignments().len(), c.num_mentions());
    }

    #[test]
    fn stage2_improves_f1_via_recall() {
        let c = corpus();
        let iuad = Iuad::fit(&c, &IuadConfig::default());
        let m1 = eval_confusion(&c, &iuad.stage1_assignments(), 2, &iuad).metrics();
        let m2 = eval_confusion(&c, &iuad.assignments(), 2, &iuad).metrics();
        assert!(
            m2.recall > m1.recall,
            "recall should improve: {:.3} -> {:.3}",
            m1.recall,
            m2.recall
        );
        assert!(
            m2.f1 >= m1.f1,
            "F1 should not degrade: {:.3} -> {:.3}",
            m1.f1,
            m2.f1
        );
    }

    #[test]
    fn stage1_has_high_precision() {
        let c = corpus();
        let iuad = Iuad::fit(&c, &IuadConfig::default());
        let m1 = eval_confusion(&c, &iuad.stage1_assignments(), 2, &iuad).metrics();
        assert!(m1.precision > 0.9, "SCN precision: {:.3}", m1.precision);
    }

    #[test]
    fn pipeline_is_deterministic() {
        let c = corpus();
        let a = Iuad::fit(&c, &IuadConfig::default());
        let b = Iuad::fit(&c, &IuadConfig::default());
        assert_eq!(a.assignments(), b.assignments());
    }

    #[test]
    fn fit_sharded_matches_fit_at_any_block_count() {
        let c = corpus();
        let mono = Iuad::fit(&c, &IuadConfig::default());
        for blocks in [1, 2, 3, 7] {
            let sharded = Iuad::fit_sharded(&c, &IuadConfig::default(), blocks);
            assert_eq!(
                sharded.assignments(),
                mono.assignments(),
                "final assignments diverged at {blocks} blocks"
            );
            assert_eq!(
                sharded.stage1_assignments(),
                mono.stage1_assignments(),
                "stage-1 assignments diverged at {blocks} blocks"
            );
            assert_eq!(sharded.gcn.cluster_of_vertex, mono.gcn.cluster_of_vertex);
            assert_eq!(sharded.gcn.pairs_scored, mono.gcn.pairs_scored);
        }
    }

    #[test]
    fn labels_of_name_parallel_to_mentions() {
        let c = corpus();
        let iuad = Iuad::fit(&c, &IuadConfig::default());
        let name = c.papers[0].authors[0];
        let labels = iuad.labels_of_name(&c, name);
        assert_eq!(labels.len(), c.mentions_of_name(name).len());
    }

    #[test]
    fn absorb_updates_network() {
        let full = Corpus::generate(&CorpusConfig {
            num_authors: 200,
            num_papers: 800,
            seed: 43,
            ..Default::default()
        });
        let (base, tail) = full.split_tail(10);
        let mut iuad = Iuad::fit(&base, &IuadConfig::default());
        let before = iuad.network.assignment.len();
        let (paper, _) = &tail[0];
        let d = iuad.disambiguate(paper, 0);
        iuad.absorb(paper, 0, d);
        assert_eq!(iuad.network.assignment.len(), before + 1);
        let m = Mention::new(paper.id, 0);
        assert!(iuad.network.assignment.contains_key(&m));
    }
}
