//! Stage 2: Global Collaboration Network construction (§V).
//!
//! For every pair of same-name SCN vertices compute the γ-vector, train the
//! two-component mixture on a sample of pairs (plus synthetic matched pairs
//! from vertex splitting, §V-F2), score every pair with the posterior
//! log-odds (Equation 11), and merge transitively where the score reaches δ.

use rand::prelude::*;
use rand::rngs::StdRng;
use rustc_hash::FxHashMap;

use iuad_corpus::{Corpus, Mention};
use iuad_graph::{AdjGraph, UnionFind, VertexId};
use iuad_mixture::{EmConfig, TwoComponentMixture};
use iuad_par::ParallelConfig;

use crate::profile::ProfileContext;
use crate::scn::{EdgeData, Scn, ScnVertex};
use crate::similarity::{SimilarityEngine, SimilarityVector, FAMILIES, NUM_SIMILARITIES};

/// How accepted pair decisions are turned into clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MergePolicy {
    /// Algorithm 1 line 15 verbatim: union every pair with score ≥ δ.
    /// Simple, but a single false-positive pair bridges two whole author
    /// clusters, so precision degrades through chaining on dense candidate
    /// sets.
    Transitive,
    /// Average-linkage agglomeration per name over the same scores: merge
    /// the two clusters with the highest *mean* pairwise score while that
    /// mean ≥ δ. Same δ semantics, no chaining. The default; the
    /// `ablation-merge-policy` experiment quantifies the difference.
    #[default]
    AverageLinkage,
}

/// GCN-stage configuration.
#[derive(Debug, Clone)]
pub struct GcnConfig {
    /// Decision threshold δ on the posterior log-odds. The default (−10) is
    /// calibrated by the `ablation-delta` sweep: naive-Bayes log-odds are
    /// biased against matches when features are correlated, and a small
    /// negative offset recovers the paper's precision/recall balance.
    pub delta: f64,
    /// Cluster-formation policy.
    pub merge_policy: MergePolicy,
    /// Fraction of candidate pairs used to train the mixture (§V-F1: 10%).
    pub sample_frac: f64,
    /// Train on at least this many pairs when available (small corpora).
    pub min_train_pairs: usize,
    /// Enable the vertex-splitting balance strategy (§V-F2).
    pub split_balance: bool,
    /// Maximum vertices split for synthetic matched pairs.
    pub max_split_vertices: usize,
    /// EM settings.
    pub em: EmConfig,
    /// Sampling seed.
    pub seed: u64,
}

impl Default for GcnConfig {
    fn default() -> Self {
        Self {
            delta: -10.0,
            merge_policy: MergePolicy::default(),
            sample_frac: 0.1,
            min_train_pairs: 200,
            split_balance: true,
            max_split_vertices: 1_000,
            em: EmConfig::default(),
            seed: 17,
        }
    }
}

/// All candidate pairs (same-name vertex pairs) with their γ-vectors.
#[derive(Debug, Clone, Default)]
pub struct PairData {
    /// Vertex pairs, `(v_i, v_j)` with `v_i < v_j`, grouped by name.
    pub pairs: Vec<(VertexId, VertexId)>,
    /// γ-vectors parallel to `pairs`.
    pub vectors: Vec<SimilarityVector>,
}

/// Compute γ-vectors for every same-name vertex pair (the candidate set `R`).
pub fn candidate_pair_data(scn: &Scn, ctx: &ProfileContext, engine: &SimilarityEngine) -> PairData {
    candidate_pair_data_parallel(scn, ctx, engine, &ParallelConfig::sequential())
}

/// [`candidate_pair_data`] with the O(n²) per-pair γ-vector computation —
/// the dominant Stage-2 cost — fanned across `par.threads` workers, one
/// job per same-name candidate group. Each group runs through
/// [`SimilarityEngine::similarity_block`], which shares one WL
/// inverted-label pass across the whole group; γ-vectors are pure
/// functions of the cached engine state, so the output is identical at any
/// thread count (and bit-identical to per-pair [`SimilarityEngine::similarity`]).
pub fn candidate_pair_data_parallel(
    scn: &Scn,
    ctx: &ProfileContext,
    engine: &SimilarityEngine,
    par: &ParallelConfig,
) -> PairData {
    let mut names: Vec<_> = scn.by_name.iter().filter(|(_, vs)| vs.len() >= 2).collect();
    names.sort_by_key(|(n, _)| n.0);
    let groups: Vec<&[VertexId]> = names.iter().map(|(_, vs)| vs.as_slice()).collect();
    let mut pairs: Vec<(VertexId, VertexId)> = Vec::new();
    for vs in &groups {
        for i in 0..vs.len() {
            for j in (i + 1)..vs.len() {
                pairs.push((vs[i].min(vs[j]), vs[i].max(vs[j])));
            }
        }
    }
    let block_vectors = iuad_par::parallel_map(par, &groups, |vs| engine.similarity_block(ctx, vs));
    let vectors: Vec<SimilarityVector> = block_vectors.into_iter().flatten().collect();
    debug_assert_eq!(vectors.len(), pairs.len());
    PairData { pairs, vectors }
}

/// [`candidate_pair_data_parallel`] sharded across the contiguous name
/// blocks of `plan`, one `iuad-par` job per block. Because blocks are
/// ascending name ranges and candidate groups are iterated in ascending
/// name order both globally and within each block, concatenating the
/// per-block outputs in block order reproduces the monolithic pair and
/// γ-vector arrays element for element.
pub fn candidate_pair_data_sharded(
    scn: &Scn,
    ctx: &ProfileContext,
    engine: &SimilarityEngine,
    plan: &crate::shard::ShardPlan,
    par: &ParallelConfig,
) -> PairData {
    let jobs: Vec<_> = plan
        .blocks()
        .map(|(lo, hi)| {
            move || {
                let mut names: Vec<_> = scn
                    .by_name
                    .iter()
                    .filter(|(n, vs)| n.0 >= lo && n.0 < hi && vs.len() >= 2)
                    .collect();
                names.sort_by_key(|(n, _)| n.0);
                let mut pairs: Vec<(VertexId, VertexId)> = Vec::new();
                let mut vectors: Vec<SimilarityVector> = Vec::new();
                for (_, vs) in names {
                    for i in 0..vs.len() {
                        for j in (i + 1)..vs.len() {
                            pairs.push((vs[i].min(vs[j]), vs[i].max(vs[j])));
                        }
                    }
                    vectors.extend(engine.similarity_block(ctx, vs));
                }
                (pairs, vectors)
            }
        })
        .collect();
    let mut data = PairData::default();
    for (pairs, vectors) in iuad_par::parallel_jobs(par, jobs) {
        data.pairs.extend(pairs);
        data.vectors.extend(vectors);
    }
    debug_assert_eq!(data.vectors.len(), data.pairs.len());
    data
}

/// Build the training rows: a seeded `sample_frac` sample of candidate
/// vectors, optionally augmented with synthetic matched rows from vertex
/// splitting (§V-F2). Returns `(rows, anchors)`: split rows are *known*
/// matched pairs and carry a pinned responsibility for semi-supervised EM;
/// sampled candidate rows are unanchored (`None`).
///
/// The split rows' structural features (γ₁, γ₂) are replaced by the sample
/// means: both halves occupy the *same* network position, so their raw
/// structural self-similarity is an artefact that would teach the matched
/// component "identical structure" — the opposite of the Stage-2 reality,
/// where true matches are precisely the vertex pairs whose stable structure
/// differs (that is why Stage 1 kept them apart).
pub fn training_rows(
    data: &PairData,
    scn: &Scn,
    ctx: &ProfileContext,
    engine: &SimilarityEngine,
    cfg: &GcnConfig,
) -> (Vec<Vec<f64>>, Vec<Option<f64>>) {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = data.vectors.len();
    let want = ((n as f64 * cfg.sample_frac).ceil() as usize)
        .max(cfg.min_train_pairs)
        .min(n);
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(&mut rng);
    idx.truncate(want);
    let mut rows: Vec<Vec<f64>> = idx.into_iter().map(|i| data.vectors[i].to_vec()).collect();
    let mut anchors: Vec<Option<f64>> = vec![None; rows.len()];

    if cfg.split_balance {
        let mean_structural: [f64; 2] = {
            let n = data.vectors.len().max(1) as f64;
            let s0: f64 = data.vectors.iter().map(|v| v[0]).sum();
            let s1: f64 = data.vectors.iter().map(|v| v[1]).sum();
            [s0 / n, s1 / n]
        };
        // Split the most productive vertices to synthesise matched pairs.
        let mut productive: Vec<(usize, VertexId)> = scn
            .graph
            .vertices()
            .filter(|(_, p)| p.mentions.len() >= 4)
            .map(|(v, p)| (p.mentions.len(), v))
            .collect();
        productive.sort_unstable_by(|a, b| b.cmp(a));
        for (_, v) in productive.into_iter().take(cfg.max_split_vertices) {
            if let Some(g) = engine.synthetic_split_vector(scn, ctx, v, &mut rng) {
                let mut row = g.to_vec();
                row[0] = mean_structural[0];
                row[1] = mean_structural[1];
                rows.push(row);
                anchors.push(Some(0.98));
            }
        }
    }
    (rows, anchors)
}

/// Fit the mixture on `rows`, restricted to the feature columns in
/// `features` (identity order `0..6` for the full model; single columns for
/// the Fig. 6 rationality study). `anchors` pins known-matched rows (from
/// vertex splitting); pass `&[]` for fully unsupervised fitting.
pub fn fit_model(
    rows: &[Vec<f64>],
    anchors: &[Option<f64>],
    features: &[usize],
    em: &EmConfig,
) -> Option<TwoComponentMixture> {
    if rows.is_empty() || features.is_empty() {
        return None;
    }
    let fams: Vec<_> = features.iter().map(|&f| FAMILIES[f]).collect();
    let projected: Vec<Vec<f64>> = rows
        .iter()
        .map(|r| features.iter().map(|&f| r[f]).collect())
        .collect();
    Some(TwoComponentMixture::fit_anchored(&fams, &projected, anchors, em).model)
}

/// Posterior log-odds scores for every candidate vector under `model`,
/// using the same feature projection as [`fit_model`].
pub fn scores_for(
    model: &TwoComponentMixture,
    vectors: &[SimilarityVector],
    features: &[usize],
) -> Vec<f64> {
    vectors
        .iter()
        .map(|v| score_one(model, v, features))
        .collect()
}

/// Project `v` onto `features` (a stack buffer — `features.len()` is at most
/// [`NUM_SIMILARITIES`]) and score it under `model`.
fn score_one(model: &TwoComponentMixture, v: &SimilarityVector, features: &[usize]) -> f64 {
    let mut buf = [0.0f64; NUM_SIMILARITIES];
    for (slot, &f) in buf.iter_mut().zip(features) {
        *slot = v[f];
    }
    model.log_odds(&buf[..features.len()])
}

/// [`scores_for`] fanned across `par.threads` workers. Scoring is pure, so
/// the output is identical at any thread count.
pub fn scores_for_parallel(
    model: &TwoComponentMixture,
    vectors: &[SimilarityVector],
    features: &[usize],
    par: &ParallelConfig,
) -> Vec<f64> {
    iuad_par::parallel_map(par, vectors, |v| score_one(model, v, features))
}

/// Apply merge decisions transitively: union every pair whose score ≥ δ
/// ([`MergePolicy::Transitive`]).
/// Returns `(cluster_of_vertex, num_clusters, num_merges)`.
pub fn clusters_from_scores(
    scn: &Scn,
    pairs: &[(VertexId, VertexId)],
    scores: &[f64],
    delta: f64,
) -> (Vec<usize>, usize, usize) {
    assert_eq!(pairs.len(), scores.len());
    let n = scn.graph.num_vertices();
    let mut uf = UnionFind::new(n);
    for (&(a, b), &s) in pairs.iter().zip(scores) {
        if s >= delta {
            uf.union(a.index(), b.index());
        }
    }
    densify(&mut uf, n)
}

/// Average-linkage clustering per name over the pair scores
/// ([`MergePolicy::AverageLinkage`]): within each name's candidate set, run
/// agglomerative clustering with distance `−score` and stop threshold `−δ`,
/// so clusters merge while their mean pairwise log-odds stays ≥ δ.
/// Returns `(cluster_of_vertex, num_clusters, num_merges)`.
///
/// Scores are clamped to ±[`SCORE_CLAMP`] before averaging: naive-Bayes
/// log-odds are extremely bimodal (|score| in the thousands), and unbounded
/// averages let one overconfident accepting pair outvote many rejections.
/// Clamping turns the linkage mean into a bounded vote.
pub fn clusters_by_linkage(
    scn: &Scn,
    pairs: &[(VertexId, VertexId)],
    scores: &[f64],
    delta: f64,
) -> (Vec<usize>, usize, usize) {
    assert_eq!(pairs.len(), scores.len());
    let n = scn.graph.num_vertices();
    let score_of: FxHashMap<(VertexId, VertexId), f64> = pairs
        .iter()
        .copied()
        .zip(scores.iter().map(|s| s.clamp(-SCORE_CLAMP, SCORE_CLAMP)))
        .collect();

    let mut uf = UnionFind::new(n);
    let mut names: Vec<_> = scn.by_name.iter().filter(|(_, vs)| vs.len() >= 2).collect();
    names.sort_by_key(|(n, _)| n.0);
    for (_, vs) in names {
        let labels = iuad_cluster::hac(
            vs.len(),
            |i, j| {
                let key = (vs[i].min(vs[j]), vs[i].max(vs[j]));
                -score_of.get(&key).copied().unwrap_or(f64::NEG_INFINITY)
            },
            iuad_cluster::Linkage::Average,
            -delta,
        );
        for i in 0..vs.len() {
            for j in (i + 1)..vs.len() {
                if labels[i] == labels[j] {
                    uf.union(vs[i].index(), vs[j].index());
                }
            }
        }
    }
    densify(&mut uf, n)
}

/// [`clusters_by_linkage`] sharded across the contiguous name blocks of
/// `plan`. Requires `pairs` grouped by ascending name (the order every
/// `candidate_pair_data*` constructor produces), so each block's pairs are
/// one contiguous slice. Each block clusters its own name groups — HAC
/// touches only same-name pairs — and returns its union operations; the
/// global fold applies them and densifies. Cluster ids depend only on the
/// resulting partition (densify orders by smallest member), so the output
/// is bit-identical to the monolithic clustering.
pub fn clusters_by_linkage_sharded(
    scn: &Scn,
    pairs: &[(VertexId, VertexId)],
    scores: &[f64],
    delta: f64,
    plan: &crate::shard::ShardPlan,
    par: &ParallelConfig,
) -> (Vec<usize>, usize, usize) {
    assert_eq!(pairs.len(), scores.len());
    let n = scn.graph.num_vertices();
    let pair_names: Vec<u32> = pairs
        .iter()
        .map(|&(a, _)| scn.graph.vertex(a).name.0)
        .collect();
    debug_assert!(
        pair_names.windows(2).all(|w| w[0] <= w[1]),
        "candidate pairs must be grouped by ascending name"
    );
    let jobs: Vec<_> = plan
        .blocks()
        .map(|(lo, hi)| {
            let start = pair_names.partition_point(|&x| x < lo);
            let end = pair_names.partition_point(|&x| x < hi);
            move || {
                let score_of: FxHashMap<(VertexId, VertexId), f64> = pairs[start..end]
                    .iter()
                    .copied()
                    .zip(
                        scores[start..end]
                            .iter()
                            .map(|s| s.clamp(-SCORE_CLAMP, SCORE_CLAMP)),
                    )
                    .collect();
                let mut names: Vec<_> = scn
                    .by_name
                    .iter()
                    .filter(|(n, vs)| n.0 >= lo && n.0 < hi && vs.len() >= 2)
                    .collect();
                names.sort_by_key(|(n, _)| n.0);
                let mut unions: Vec<(usize, usize)> = Vec::new();
                for (_, vs) in names {
                    let labels = iuad_cluster::hac(
                        vs.len(),
                        |i, j| {
                            let key = (vs[i].min(vs[j]), vs[i].max(vs[j]));
                            -score_of.get(&key).copied().unwrap_or(f64::NEG_INFINITY)
                        },
                        iuad_cluster::Linkage::Average,
                        -delta,
                    );
                    for i in 0..vs.len() {
                        for j in (i + 1)..vs.len() {
                            if labels[i] == labels[j] {
                                unions.push((vs[i].index(), vs[j].index()));
                            }
                        }
                    }
                }
                unions
            }
        })
        .collect();
    let mut uf = UnionFind::new(n);
    for unions in iuad_par::parallel_jobs(par, jobs) {
        for (a, b) in unions {
            uf.union(a, b);
        }
    }
    densify(&mut uf, n)
}

/// Bound on per-pair log-odds inside the linkage average.
pub const SCORE_CLAMP: f64 = 25.0;

/// Dense cluster ids ordered by smallest member.
fn densify(uf: &mut UnionFind, n: usize) -> (Vec<usize>, usize, usize) {
    let merges = n - uf.num_components();
    let mut cluster_of = vec![usize::MAX; n];
    let mut next = 0usize;
    for v in 0..n {
        let root = uf.find(v);
        if cluster_of[root] == usize::MAX {
            cluster_of[root] = next;
            next += 1;
        }
        cluster_of[v] = cluster_of[root];
    }
    (cluster_of, next, merges)
}

/// Labelled knowledge for the semi-supervised extension (§VII future work):
/// vertex pairs known to be the same author (true) or different (false).
/// Implemented here because the anchored-EM machinery of §V-F2 already
/// supports it: labels become pinned responsibilities.
pub type LabeledPair = ((VertexId, VertexId), bool);

/// The Stage-2 result.
#[derive(Debug, Clone)]
pub struct Gcn {
    /// The fitted mixture (None when the corpus had no candidate pairs).
    pub model: Option<TwoComponentMixture>,
    /// SCN vertex → GCN cluster id (dense).
    pub cluster_of_vertex: Vec<usize>,
    /// Number of clusters (= vertices of the merged network).
    pub num_clusters: usize,
    /// Accepted merges.
    pub num_merges: usize,
    /// Candidate pairs scored.
    pub pairs_scored: usize,
}

impl Gcn {
    /// Run the full Stage 2 over an SCN, sequentially.
    pub fn build(
        scn: &Scn,
        ctx: &ProfileContext,
        engine: &SimilarityEngine,
        cfg: &GcnConfig,
    ) -> Gcn {
        Self::build_inner(scn, ctx, engine, cfg, &[], &ParallelConfig::sequential())
    }

    /// Run the full Stage 2 with the candidate γ-vector computation and
    /// pair scoring fanned across `par.threads` workers. EM training stays
    /// sequential (it is a seeded, iterative fixpoint), so the result is
    /// identical to [`Gcn::build`] at any thread count.
    pub fn build_parallel(
        scn: &Scn,
        ctx: &ProfileContext,
        engine: &SimilarityEngine,
        cfg: &GcnConfig,
        par: &ParallelConfig,
    ) -> Gcn {
        Self::build_inner(scn, ctx, engine, cfg, &[], par)
    }

    /// Semi-supervised Stage 2: like [`Gcn::build`], but additionally pins
    /// the responsibilities of `labels` (known matched/unmatched vertex
    /// pairs, e.g. from manual curation) during EM. The paper names this
    /// extension as future work; anchored EM makes it direct.
    pub fn build_semi_supervised(
        scn: &Scn,
        ctx: &ProfileContext,
        engine: &SimilarityEngine,
        cfg: &GcnConfig,
        labels: &[LabeledPair],
    ) -> Gcn {
        Self::build_inner(scn, ctx, engine, cfg, labels, &ParallelConfig::sequential())
    }

    /// Run the full Stage 2 with γ-vector computation and clustering
    /// sharded across the name blocks of `plan`. Candidate data
    /// concatenates in monolith order, the training sample and EM fit stay
    /// global (one seeded rng over the concatenated vectors), scoring is a
    /// pure map, and the sharded clustering reproduces the monolithic
    /// partition — so the result is bit-identical to [`Gcn::build_parallel`].
    pub fn build_sharded(
        scn: &Scn,
        ctx: &ProfileContext,
        engine: &SimilarityEngine,
        cfg: &GcnConfig,
        plan: &crate::shard::ShardPlan,
        par: &ParallelConfig,
    ) -> Gcn {
        let data = candidate_pair_data_sharded(scn, ctx, engine, plan, par);
        let (rows, anchors) = training_rows(&data, scn, ctx, engine, cfg);
        let all_features: Vec<usize> = (0..NUM_SIMILARITIES).collect();
        let model = fit_model(&rows, &anchors, &all_features, &cfg.em);
        let (cluster_of_vertex, num_clusters, num_merges) = match &model {
            Some(m) => {
                let scores = scores_for_parallel(m, &data.vectors, &all_features, par);
                match cfg.merge_policy {
                    MergePolicy::Transitive => {
                        clusters_from_scores(scn, &data.pairs, &scores, cfg.delta)
                    }
                    MergePolicy::AverageLinkage => {
                        clusters_by_linkage_sharded(scn, &data.pairs, &scores, cfg.delta, plan, par)
                    }
                }
            }
            None => {
                let n = scn.graph.num_vertices();
                ((0..n).collect(), n, 0)
            }
        };
        Gcn {
            model,
            cluster_of_vertex,
            num_clusters,
            num_merges,
            pairs_scored: data.pairs.len(),
        }
    }

    fn build_inner(
        scn: &Scn,
        ctx: &ProfileContext,
        engine: &SimilarityEngine,
        cfg: &GcnConfig,
        labels: &[LabeledPair],
        par: &ParallelConfig,
    ) -> Gcn {
        let data = candidate_pair_data_parallel(scn, ctx, engine, par);
        let (mut rows, mut anchors) = training_rows(&data, scn, ctx, engine, cfg);
        for &((a, b), matched) in labels {
            let key = (a.min(b), a.max(b));
            // Locate the labelled pair's γ-vector among the candidates; a
            // pair that is not a candidate (different names) is ignored.
            if let Some(i) = data.pairs.iter().position(|&p| p == key) {
                rows.push(data.vectors[i].to_vec());
                anchors.push(Some(if matched { 0.99 } else { 0.01 }));
            }
        }
        let all_features: Vec<usize> = (0..NUM_SIMILARITIES).collect();
        let model = fit_model(&rows, &anchors, &all_features, &cfg.em);
        let (cluster_of_vertex, num_clusters, num_merges) = match &model {
            Some(m) => {
                let scores = scores_for_parallel(m, &data.vectors, &all_features, par);
                match cfg.merge_policy {
                    MergePolicy::Transitive => {
                        clusters_from_scores(scn, &data.pairs, &scores, cfg.delta)
                    }
                    MergePolicy::AverageLinkage => {
                        clusters_by_linkage(scn, &data.pairs, &scores, cfg.delta)
                    }
                }
            }
            None => {
                let n = scn.graph.num_vertices();
                ((0..n).collect(), n, 0)
            }
        };
        Gcn {
            model,
            cluster_of_vertex,
            num_clusters,
            num_merges,
            pairs_scored: data.pairs.len(),
        }
    }

    /// Mention → cluster assignment over the whole corpus.
    pub fn assignment(&self, scn: &Scn) -> FxHashMap<Mention, usize> {
        scn.assignment
            .iter()
            .map(|(&m, &v)| (m, self.cluster_of_vertex[v.index()]))
            .collect()
    }
}

/// How the merged network's vertices derive from the pre-merge SCN — the
/// provenance record [`crate::SimilarityEngine::derive`] consumes to carry
/// engine state across the merge instead of rebuilding it (§V-E: the
/// post-merge state should be *derived* from the pre-merge state, not
/// recomputed).
#[derive(Debug, Clone)]
pub struct MergePlan {
    /// Old SCN vertex (by index) → merged-network vertex. Total: every old
    /// vertex carries at least one mention, so every cluster materialises.
    pub old_to_new: Vec<VertexId>,
    /// Merged-network vertices formed by coalescing ≥ 2 old vertices,
    /// ascending. Everything else is an index-remapped old vertex whose
    /// mention set (and hence profile) is unchanged.
    pub coalesced: Vec<VertexId>,
}

impl MergePlan {
    /// An identity plan over a network of `num_vertices` vertices whose
    /// `touched` vertices must be rebuilt from their mentions. This is the
    /// serving-tier shape of a plan: no vertices coalesced, but absorbed
    /// mentions left `touched` vertices with merged (non-canonical)
    /// profiles and invalidated caches, which one
    /// [`crate::SimilarityEngine::derive`] pass re-canonicalizes.
    pub fn refresh(num_vertices: usize, touched: &[VertexId]) -> MergePlan {
        let old_to_new: Vec<VertexId> = (0..num_vertices).map(VertexId::from).collect();
        let mut coalesced = touched.to_vec();
        coalesced.sort_unstable();
        coalesced.dedup();
        MergePlan {
            old_to_new,
            coalesced,
        }
    }
}

/// Rebuild the merged collaboration network: vertices = GCN clusters, with
/// collaborative relations recovered per paper (Algorithm 1 line 16). The
/// result is a fully-formed [`Scn`] usable by the incremental stage, plus
/// the [`MergePlan`] recording how its vertices derive from `scn`'s.
pub fn merge_network(corpus: &Corpus, scn: &Scn, cluster_of_vertex: &[usize]) -> (Scn, MergePlan) {
    let mut graph: AdjGraph<ScnVertex, EdgeData> = AdjGraph::new();
    let mut vertex_of_cluster: FxHashMap<usize, VertexId> = FxHashMap::default();
    let mut assignment: FxHashMap<Mention, VertexId> = FxHashMap::default();

    let mut ordered: Vec<(Mention, VertexId)> =
        scn.assignment.iter().map(|(&m, &v)| (m, v)).collect();
    ordered.sort_unstable();
    for (m, old_v) in ordered {
        let cluster = cluster_of_vertex[old_v.index()];
        let name = scn.graph.vertex(old_v).name;
        let nv = *vertex_of_cluster.entry(cluster).or_insert_with(|| {
            graph.add_vertex(ScnVertex {
                name,
                mentions: Vec::new(),
            })
        });
        debug_assert_eq!(graph.vertex(nv).name, name, "merged cross-name cluster");
        graph.vertex_mut(nv).mentions.push(m);
        assignment.insert(m, nv);
    }

    for p in &corpus.papers {
        let vs: Vec<(u32, VertexId)> = p
            .authors
            .iter()
            .enumerate()
            .map(|(slot, &n)| (n.0, assignment[&Mention::new(p.id, slot)]))
            .collect();
        for i in 0..vs.len() {
            for j in (i + 1)..vs.len() {
                let (na, va) = vs[i];
                let (nb, vb) = vs[j];
                if va == vb {
                    continue;
                }
                let key = if na < nb { (na, nb) } else { (nb, na) };
                let support = scn.scrs.get(&key).copied().unwrap_or(0);
                graph.upsert_edge(
                    va,
                    vb,
                    || EdgeData {
                        papers: vec![p.id],
                        scr_support: support,
                    },
                    |e| {
                        if e.papers.last() != Some(&p.id) {
                            e.papers.push(p.id);
                        }
                    },
                );
            }
        }
    }

    let mut by_name = FxHashMap::default();
    for (v, payload) in graph.vertices() {
        by_name.entry(payload.name).or_insert_with(Vec::new).push(v);
    }

    let old_to_new: Vec<VertexId> = cluster_of_vertex
        .iter()
        .map(|c| vertex_of_cluster[c])
        .collect();
    let mut preimages = vec![0u32; graph.num_vertices()];
    for &nv in &old_to_new {
        preimages[nv.index()] += 1;
    }
    let coalesced: Vec<VertexId> = preimages
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c >= 2)
        .map(|(i, _)| VertexId::from(i))
        .collect();

    (
        Scn {
            graph,
            assignment,
            by_name,
            scrs: scn.scrs.clone(),
            eta: scn.eta,
        },
        MergePlan {
            old_to_new,
            coalesced,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::CacheScope;
    use iuad_corpus::CorpusConfig;

    fn setup() -> (Corpus, Scn, ProfileContext) {
        let c = Corpus::generate(&CorpusConfig {
            num_authors: 250,
            num_papers: 1000,
            seed: 29,
            ..Default::default()
        });
        let scn = Scn::build(&c, 2);
        let ctx = ProfileContext::build(&c, 16, 3);
        (c, scn, ctx)
    }

    #[test]
    fn gcn_reduces_vertex_count_monotonically_in_delta() {
        let (_, scn, ctx) = setup();
        let engine = SimilarityEngine::build(&scn, &ctx, 0.62, 2, CacheScope::AmbiguousOnly);
        let lo = Gcn::build(
            &scn,
            &ctx,
            &engine,
            &GcnConfig {
                delta: -5.0,
                ..Default::default()
            },
        );
        let hi = Gcn::build(
            &scn,
            &ctx,
            &engine,
            &GcnConfig {
                delta: 50.0,
                ..Default::default()
            },
        );
        assert!(lo.num_clusters <= hi.num_clusters);
        assert!(lo.num_merges >= hi.num_merges);
    }

    #[test]
    fn merges_only_same_name_vertices() {
        let (c, scn, ctx) = setup();
        let engine = SimilarityEngine::build(&scn, &ctx, 0.62, 2, CacheScope::AmbiguousOnly);
        let gcn = Gcn::build(&scn, &ctx, &engine, &GcnConfig::default());
        let (merged, plan) = merge_network(&c, &scn, &gcn.cluster_of_vertex);
        // Plan sanity: the map is total and coalesced counts match merges.
        assert_eq!(plan.old_to_new.len(), scn.graph.num_vertices());
        let merged_away: usize = plan
            .coalesced
            .iter()
            .map(|&v| {
                plan.old_to_new
                    .iter()
                    .filter(|&&nv| nv == v)
                    .count()
                    .saturating_sub(1)
            })
            .sum();
        assert_eq!(merged_away, gcn.num_merges);
        for (_, payload) in merged.graph.vertices() {
            for m in &payload.mentions {
                assert_eq!(c.name_of(*m), payload.name);
            }
        }
    }

    #[test]
    fn assignment_covers_all_mentions() {
        let (c, scn, ctx) = setup();
        let engine = SimilarityEngine::build(&scn, &ctx, 0.62, 2, CacheScope::AmbiguousOnly);
        let gcn = Gcn::build(&scn, &ctx, &engine, &GcnConfig::default());
        let assign = gcn.assignment(&scn);
        assert_eq!(assign.len(), c.num_mentions());
        for &cl in assign.values() {
            assert!(cl < gcn.num_clusters);
        }
    }

    #[test]
    fn merged_network_is_consistent() {
        let (c, scn, ctx) = setup();
        let engine = SimilarityEngine::build(&scn, &ctx, 0.62, 2, CacheScope::AmbiguousOnly);
        let gcn = Gcn::build(&scn, &ctx, &engine, &GcnConfig::default());
        let (merged, _) = merge_network(&c, &scn, &gcn.cluster_of_vertex);
        assert_eq!(merged.graph.num_vertices(), gcn.num_clusters);
        assert_eq!(merged.assignment.len(), c.num_mentions());
        let total: usize = merged.graph.vertices().map(|(_, p)| p.mentions.len()).sum();
        assert_eq!(total, c.num_mentions());
    }

    #[test]
    fn gcn_improves_recall_over_scn() {
        use iuad_eval::pairwise_confusion;
        let (c, scn, ctx) = setup();
        let engine = SimilarityEngine::build(&scn, &ctx, 0.62, 2, CacheScope::AmbiguousOnly);
        let gcn = Gcn::build(&scn, &ctx, &engine, &GcnConfig::default());
        let assign = gcn.assignment(&scn);

        let mut scn_conf = iuad_eval::Confusion::default();
        let mut gcn_conf = iuad_eval::Confusion::default();
        for (name, vs) in &scn.by_name {
            if vs.len() < 2 {
                continue;
            }
            let mentions = c.mentions_of_name(*name);
            let truth: Vec<u32> = mentions.iter().map(|m| c.truth_of(*m).0).collect();
            let scn_pred: Vec<usize> = mentions.iter().map(|m| scn.assignment[m].index()).collect();
            let gcn_pred: Vec<usize> = mentions.iter().map(|m| assign[m]).collect();
            scn_conf.add(pairwise_confusion(&scn_pred, &truth));
            gcn_conf.add(pairwise_confusion(&gcn_pred, &truth));
        }
        let ms = scn_conf.metrics();
        let mg = gcn_conf.metrics();
        assert!(
            mg.recall >= ms.recall,
            "GCN should not lower recall: {} -> {}",
            ms.recall,
            mg.recall
        );
    }

    #[test]
    fn single_feature_model_fits_and_scores() {
        let (_, scn, ctx) = setup();
        let engine = SimilarityEngine::build(&scn, &ctx, 0.62, 2, CacheScope::AmbiguousOnly);
        let data = candidate_pair_data(&scn, &ctx, &engine);
        let (rows, _anchors) = training_rows(&data, &scn, &ctx, &engine, &GcnConfig::default());
        for f in 0..NUM_SIMILARITIES {
            let model = fit_model(&rows, &[], &[f], &EmConfig::default()).expect("model fits");
            let scores = scores_for(&model, &data.vectors, &[f]);
            assert_eq!(scores.len(), data.pairs.len());
            assert!(scores.iter().all(|s| s.is_finite()), "feature {f}");
        }
    }

    #[test]
    fn semi_supervised_uses_labels() {
        let (c, scn, ctx) = setup();
        let engine = SimilarityEngine::build(&scn, &ctx, 0.62, 2, CacheScope::AmbiguousOnly);
        let data = candidate_pair_data(&scn, &ctx, &engine);
        // Label the first 30 candidate pairs with ground truth.
        let majority = |v: iuad_graph::VertexId| -> u32 {
            let mut counts = FxHashMap::default();
            for m in &scn.graph.vertex(v).mentions {
                *counts.entry(c.truth_of(*m).0).or_insert(0usize) += 1;
            }
            counts
                .into_iter()
                .max_by_key(|&(a, n)| (n, std::cmp::Reverse(a)))
                .map(|(a, _)| a)
                .unwrap()
        };
        let labels: Vec<_> = data
            .pairs
            .iter()
            .take(30)
            .map(|&(a, b)| ((a, b), majority(a) == majority(b)))
            .collect();
        let semi = Gcn::build_semi_supervised(&scn, &ctx, &engine, &GcnConfig::default(), &labels);
        let unsup = Gcn::build(&scn, &ctx, &engine, &GcnConfig::default());
        // Both are valid partitions covering all vertices.
        assert_eq!(semi.cluster_of_vertex.len(), unsup.cluster_of_vertex.len());
        assert!(semi.model.is_some());
    }

    #[test]
    fn empty_candidate_set_yields_identity() {
        // Corpus with no ambiguous names: every author distinct name.
        let c = Corpus {
            papers: vec![iuad_corpus::Paper {
                id: iuad_corpus::PaperId(0),
                authors: vec![iuad_corpus::NameId(0), iuad_corpus::NameId(1)],
                title: "t".into(),
                venue: iuad_corpus::VenueId(0),
                year: 2000,
            }],
            name_strings: vec!["a".into(), "b".into()],
            venue_strings: vec!["v".into()],
            truth: vec![vec![iuad_corpus::AuthorId(0), iuad_corpus::AuthorId(1)]],
            author_names: vec![iuad_corpus::NameId(0), iuad_corpus::NameId(1)],
            config: None,
        };
        let scn = Scn::build(&c, 2);
        let ctx = ProfileContext::build(&c, 8, 1);
        let engine = SimilarityEngine::build(&scn, &ctx, 0.62, 2, CacheScope::AmbiguousOnly);
        let gcn = Gcn::build(&scn, &ctx, &engine, &GcnConfig::default());
        assert!(gcn.model.is_none());
        assert_eq!(gcn.num_clusters, scn.graph.num_vertices());
        assert_eq!(gcn.num_merges, 0);
    }
}
