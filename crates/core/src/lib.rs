//! IUAD — Incremental Unsupervised Author Disambiguation via bottom-up
//! collaboration network reconstruction (Li et al., ICDE 2021).
//!
//! The pipeline has two stages (Algorithm 1):
//!
//! 1. **SCN construction** ([`Scn`]): mine η-stable collaborative relations
//!    (η-SCRs) from co-author lists with frequent-pair mining, insert them
//!    with the stable-triangle merge rule, and assign every author mention
//!    to a hypothesised-author vertex. Mentions with no stable relation stay
//!    singleton vertices — the bottom-up starting point where all same-name
//!    authors are assumed different.
//! 2. **GCN construction** ([`Gcn`]): for every pair of same-name vertices,
//!    compute a six-dimensional similarity vector ([`similarity`]), fit a
//!    two-component exponential-family mixture with EM, and merge pairs
//!    whose posterior log-odds reach the decision threshold δ.
//!
//! New papers are disambiguated **incrementally** ([`Iuad::disambiguate`]):
//! score the new mention against the existing same-name vertices with the
//! already-fitted model — no retraining.
//!
//! ```
//! use iuad_core::{Iuad, IuadConfig};
//! use iuad_corpus::{Corpus, CorpusConfig};
//!
//! let corpus = Corpus::generate(&CorpusConfig {
//!     num_authors: 150, num_papers: 500, seed: 3, ..Default::default()
//! });
//! let iuad = Iuad::fit(&corpus, &IuadConfig::default());
//! let clusters = iuad.assignments();
//! assert_eq!(clusters.len(), corpus.num_mentions());
//! ```

#![warn(missing_docs)]

pub mod gcn;
pub mod incremental;
pub mod pipeline;
pub mod profile;
pub mod scn;
pub mod shard;
pub mod similarity;

pub use gcn::{merge_network, Gcn, GcnConfig, MergePlan, MergePolicy};
pub use incremental::{
    absorb_mention, decide_with_evidence, disambiguate_mention, Decision, MentionEvidence,
};
pub use iuad_par::ParallelConfig;
pub use pipeline::{FittedState, Iuad, IuadConfig};
pub use profile::{KeywordSlab, KeywordYears, ProfileContext, VenueCounts, VertexProfile};
pub use scn::{EdgeData, Scn, ScnVertex};
pub use shard::ShardPlan;
pub use similarity::{CacheScope, SimilarityEngine, SimilarityVector, FAMILIES, NUM_SIMILARITIES};
