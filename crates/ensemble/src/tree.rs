//! Weighted CART classification tree (Gini impurity), the shared substrate
//! of all four ensemble learners.

use rand::prelude::*;
use rand::rngs::StdRng;

use crate::Classifier;

/// Tree growth limits.
#[derive(Debug, Clone)]
pub struct TreeConfig {
    /// Maximum depth (1 = decision stump).
    pub max_depth: usize,
    /// Minimum weighted samples to attempt a split.
    pub min_samples_split: usize,
    /// Features examined per split: `None` = all, `Some(k)` = a random
    /// subset of size k (random-forest style).
    pub max_features: Option<usize>,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            max_depth: 6,
            min_samples_split: 2,
            max_features: None,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        proba: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted classification tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    nodes: Vec<Node>,
}

/// The training set viewed as parallel arrays, bundled so the recursive
/// growth only threads one reference.
#[derive(Clone, Copy)]
struct Samples<'a> {
    xs: &'a [Vec<f64>],
    ys: &'a [bool],
    weights: &'a [f64],
}

impl DecisionTree {
    /// Fit on rows `xs` with boolean labels and per-sample weights (pass all
    /// ones for unweighted). `rng` drives feature subsampling only.
    pub fn fit(
        xs: &[Vec<f64>],
        ys: &[bool],
        weights: &[f64],
        cfg: &TreeConfig,
        rng: &mut StdRng,
    ) -> Self {
        assert_eq!(xs.len(), ys.len());
        assert_eq!(xs.len(), weights.len());
        assert!(!xs.is_empty(), "cannot fit a tree on no samples");
        let mut tree = DecisionTree { nodes: Vec::new() };
        let indices: Vec<usize> = (0..xs.len()).collect();
        tree.grow(&Samples { xs, ys, weights }, &indices, cfg, 0, rng);
        tree
    }

    fn grow(
        &mut self,
        s: &Samples<'_>,
        indices: &[usize],
        cfg: &TreeConfig,
        depth: usize,
        rng: &mut StdRng,
    ) -> usize {
        let Samples { xs, ys, weights } = *s;
        let (w_pos, w_total) = indices.iter().fold((0.0, 0.0), |(p, t), &i| {
            (p + if ys[i] { weights[i] } else { 0.0 }, t + weights[i])
        });
        let proba = if w_total > 0.0 { w_pos / w_total } else { 0.5 };

        let make_leaf = |nodes: &mut Vec<Node>| {
            nodes.push(Node::Leaf { proba });
            nodes.len() - 1
        };

        if depth >= cfg.max_depth
            || indices.len() < cfg.min_samples_split
            || proba == 0.0
            || proba == 1.0
        {
            return make_leaf(&mut self.nodes);
        }

        let num_features = xs[0].len();
        let features: Vec<usize> = match cfg.max_features {
            None => (0..num_features).collect(),
            Some(k) => {
                let mut all: Vec<usize> = (0..num_features).collect();
                all.shuffle(rng);
                all.truncate(k.clamp(1, num_features));
                all
            }
        };

        let parent_gini = gini(w_pos, w_total);
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, impurity drop)
        let mut order: Vec<usize> = indices.to_vec();
        for &f in &features {
            order.sort_unstable_by(|&a, &b| xs[a][f].total_cmp(&xs[b][f]));
            let mut lw = 0.0;
            let mut lp = 0.0;
            for k in 0..order.len() - 1 {
                let i = order[k];
                lw += weights[i];
                if ys[i] {
                    lp += weights[i];
                }
                let x_here = xs[i][f];
                let x_next = xs[order[k + 1]][f];
                if x_here == x_next {
                    continue; // can't split between equal values
                }
                let rw = w_total - lw;
                if lw <= 0.0 || rw <= 0.0 {
                    continue;
                }
                let rp = w_pos - lp;
                let drop =
                    parent_gini - (lw / w_total) * gini(lp, lw) - (rw / w_total) * gini(rp, rw);
                if best.is_none_or(|(_, _, d)| drop > d) {
                    best = Some((f, (x_here + x_next) / 2.0, drop));
                }
            }
        }

        let Some((feature, threshold, drop)) = best else {
            return make_leaf(&mut self.nodes);
        };
        if drop <= 1e-12 {
            return make_leaf(&mut self.nodes);
        }

        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
            indices.iter().partition(|&&i| xs[i][feature] <= threshold);
        debug_assert!(!left_idx.is_empty() && !right_idx.is_empty());

        let slot = self.nodes.len();
        self.nodes.push(Node::Leaf { proba }); // placeholder
        let left = self.grow(s, &left_idx, cfg, depth + 1, rng);
        let right = self.grow(s, &right_idx, cfg, depth + 1, rng);
        self.nodes[slot] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        slot
    }

    /// Number of nodes (diagnostics).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }
}

fn gini(w_pos: f64, w_total: f64) -> f64 {
    if w_total <= 0.0 {
        return 0.0;
    }
    let p = w_pos / w_total;
    2.0 * p * (1.0 - p)
}

impl Classifier for DecisionTree {
    fn predict_proba(&self, x: &[f64]) -> f64 {
        // The root is the first node pushed *after* its subtrees only for
        // leaves; splits reserve slot first, so the root is always node 0.
        let mut cur = 0usize;
        loop {
            match &self.nodes[cur] {
                Node::Leaf { proba } => return *proba,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    cur = if x[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{accuracy, testdata};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn fits_linear_data_perfectly_in_depth_two() {
        let (xs, ys) = testdata::linear(300, 2);
        let w = vec![1.0; xs.len()];
        let tree = DecisionTree::fit(&xs, &ys, &w, &TreeConfig::default(), &mut rng());
        assert!(accuracy(&tree, &xs, &ys) > 0.95);
    }

    #[test]
    fn solves_xor_with_enough_depth() {
        // Greedy Gini gets ~zero gain on the first XOR split, so shallow
        // trees fail; with depth to spare the regions still get carved out.
        let (xs, ys) = testdata::xor(400, 3);
        let w = vec![1.0; xs.len()];
        let cfg = TreeConfig {
            max_depth: 8,
            ..Default::default()
        };
        let tree = DecisionTree::fit(&xs, &ys, &w, &cfg, &mut rng());
        assert!(accuracy(&tree, &xs, &ys) > 0.95);
    }

    #[test]
    fn stump_cannot_solve_xor() {
        let (xs, ys) = testdata::xor(400, 4);
        let w = vec![1.0; xs.len()];
        let cfg = TreeConfig {
            max_depth: 1,
            ..Default::default()
        };
        let stump = DecisionTree::fit(&xs, &ys, &w, &cfg, &mut rng());
        let acc = accuracy(&stump, &xs, &ys);
        assert!(acc < 0.7, "stump should fail on XOR, got {acc}");
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let xs = vec![vec![0.0], vec![1.0], vec![2.0]];
        let ys = vec![true, true, true];
        let w = vec![1.0; 3];
        let tree = DecisionTree::fit(&xs, &ys, &w, &TreeConfig::default(), &mut rng());
        assert_eq!(tree.num_nodes(), 1);
        assert_eq!(tree.predict_proba(&[5.0]), 1.0);
    }

    #[test]
    fn weights_steer_the_split() {
        // Same xs; weights make the minority class dominate.
        let xs = vec![vec![0.0], vec![0.2], vec![0.8], vec![1.0]];
        let ys = vec![true, true, false, false];
        let heavy_false = vec![0.1, 0.1, 10.0, 10.0];
        let cfg = TreeConfig {
            max_depth: 1,
            ..Default::default()
        };
        let tree = DecisionTree::fit(&xs, &ys, &heavy_false, &cfg, &mut rng());
        // Even in the "true" region the prior leans false lightly; key check:
        // the false side must be predicted decisively.
        assert!(tree.predict_proba(&[0.9]) < 0.1);
    }

    #[test]
    fn constant_features_give_single_leaf() {
        let xs = vec![vec![1.0], vec![1.0], vec![1.0], vec![1.0]];
        let ys = vec![true, false, true, false];
        let w = vec![1.0; 4];
        let tree = DecisionTree::fit(&xs, &ys, &w, &TreeConfig::default(), &mut rng());
        assert_eq!(tree.num_nodes(), 1);
        assert_eq!(tree.predict_proba(&[1.0]), 0.5);
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn empty_fit_panics() {
        let _ = DecisionTree::fit(&[], &[], &[], &TreeConfig::default(), &mut rng());
    }
}
