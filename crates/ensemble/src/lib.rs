//! From-scratch tree ensembles for the supervised baselines (§VI-A3).
//!
//! The paper compares IUAD against AdaBoost, GBDT, Random Forest, and
//! XGBoost classifiers trained on pairwise features (Treeratpituk & Giles).
//! No external ML dependency is available offline, so this crate implements
//! the four learners on a shared CART substrate:
//!
//! * [`DecisionTree`] — weighted Gini classification tree (also the stump);
//! * [`AdaBoost`] — SAMME boosting of depth-1 stumps;
//! * [`RandomForest`] — bootstrap bagging with √d feature subsampling;
//! * [`Gbdt`] — gradient boosting with logistic loss and Newton leaf values;
//! * [`XgBoost`] — second-order boosting with L2-regularised gain splits
//!   (the core of the XGBoost algorithm, minus the systems machinery).
//!
//! All learners implement [`Classifier`]: binary classification over dense
//! `f64` feature rows, deterministic given their seeds.

#![warn(missing_docs)]

mod adaboost;
mod forest;
mod gbdt;
mod tree;
mod xgb;

pub use adaboost::{AdaBoost, AdaBoostConfig};
pub use forest::{RandomForest, RandomForestConfig};
pub use gbdt::{Gbdt, GbdtConfig};
pub use tree::{DecisionTree, TreeConfig};
pub use xgb::{XgBoost, XgBoostConfig};

/// A trained binary classifier over dense feature rows.
pub trait Classifier {
    /// Positive-class probability (or a monotone surrogate in `[0,1]`).
    fn predict_proba(&self, x: &[f64]) -> f64;

    /// Hard decision at the 0.5 threshold.
    fn predict(&self, x: &[f64]) -> bool {
        self.predict_proba(x) >= 0.5
    }
}

/// Fraction of correct hard predictions — test helper shared by the
/// learner test suites.
pub fn accuracy<C: Classifier>(model: &C, xs: &[Vec<f64>], ys: &[bool]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    if xs.is_empty() {
        return 0.0;
    }
    let correct = xs
        .iter()
        .zip(ys)
        .filter(|(x, &y)| model.predict(x) == y)
        .count();
    correct as f64 / xs.len() as f64
}

#[cfg(test)]
pub(crate) mod testdata {
    use rand::prelude::*;
    use rand::rngs::StdRng;

    /// Linearly separable: y = x0 + x1 > 1.
    pub fn linear(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let xs: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.gen::<f64>(), rng.gen::<f64>()])
            .collect();
        let ys = xs.iter().map(|x| x[0] + x[1] > 1.0).collect();
        (xs, ys)
    }

    /// XOR over thresholds — not linearly separable, needs depth ≥ 2 or
    /// boosting.
    pub fn xor(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let xs: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.gen::<f64>(), rng.gen::<f64>()])
            .collect();
        let ys = xs.iter().map(|x| (x[0] > 0.5) != (x[1] > 0.5)).collect();
        (xs, ys)
    }
}
