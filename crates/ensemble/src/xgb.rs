//! XGBoost-style second-order boosting (Chen & Guestrin, KDD 2016):
//! gain-based splits with L2-regularised leaf weights, minimum split gain,
//! and minimum child hessian weight. The systems machinery of XGBoost
//! (sparsity-aware scans, histogram binning, out-of-core) is out of scope —
//! the *statistical* algorithm is what the baseline comparison needs.

use crate::gbdt::{GradTree, SplitCriterion};
use crate::Classifier;

/// XGBoost hyper-parameters.
#[derive(Debug, Clone)]
pub struct XgBoostConfig {
    /// Boosting rounds.
    pub rounds: usize,
    /// Per-tree depth.
    pub max_depth: usize,
    /// Shrinkage η.
    pub learning_rate: f64,
    /// L2 regularisation λ on leaf weights.
    pub lambda: f64,
    /// Minimum split gain γ.
    pub gamma: f64,
    /// Minimum hessian mass per child.
    pub min_child_weight: f64,
}

impl Default for XgBoostConfig {
    fn default() -> Self {
        Self {
            rounds: 80,
            max_depth: 4,
            learning_rate: 0.2,
            lambda: 1.0,
            gamma: 0.0,
            min_child_weight: 1e-3,
        }
    }
}

/// A fitted XGBoost-style classifier.
#[derive(Debug)]
pub struct XgBoost {
    base_score: f64,
    trees: Vec<GradTree>,
    learning_rate: f64,
}

impl XgBoost {
    /// Fit with logistic loss and second-order splits.
    pub fn fit(xs: &[Vec<f64>], ys: &[bool], cfg: &XgBoostConfig) -> Self {
        assert_eq!(xs.len(), ys.len());
        assert!(!xs.is_empty(), "cannot fit on no samples");
        let n = xs.len();
        let pos = ys.iter().filter(|&&y| y).count() as f64;
        let prior = (pos / n as f64).clamp(1e-6, 1.0 - 1e-6);
        let base_score = (prior / (1.0 - prior)).ln();

        let criterion = SplitCriterion::Gain {
            lambda: cfg.lambda,
            gamma: cfg.gamma,
        };
        let mut raw = vec![base_score; n];
        let mut grad = vec![0.0; n];
        let mut hess = vec![0.0; n];
        let mut trees = Vec::with_capacity(cfg.rounds);
        for _ in 0..cfg.rounds {
            for i in 0..n {
                let p = 1.0 / (1.0 + (-raw[i]).exp());
                grad[i] = p - if ys[i] { 1.0 } else { 0.0 };
                hess[i] = (p * (1.0 - p)).max(1e-12);
            }
            let tree = GradTree::fit(
                xs,
                &grad,
                &hess,
                cfg.max_depth,
                cfg.min_child_weight,
                criterion,
            );
            for (i, x) in xs.iter().enumerate() {
                raw[i] += cfg.learning_rate * tree.predict(x);
            }
            trees.push(tree);
        }
        XgBoost {
            base_score,
            trees,
            learning_rate: cfg.learning_rate,
        }
    }

    /// Raw additive score (log-odds scale).
    pub fn decision_function(&self, x: &[f64]) -> f64 {
        self.base_score + self.learning_rate * self.trees.iter().map(|t| t.predict(x)).sum::<f64>()
    }
}

impl Classifier for XgBoost {
    fn predict_proba(&self, x: &[f64]) -> f64 {
        1.0 / (1.0 + (-self.decision_function(x)).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{accuracy, testdata};

    #[test]
    fn fits_xor() {
        let (xs, ys) = testdata::xor(500, 41);
        let model = XgBoost::fit(&xs, &ys, &XgBoostConfig::default());
        assert!(accuracy(&model, &xs, &ys) > 0.93);
    }

    #[test]
    fn fits_linear() {
        let (xs, ys) = testdata::linear(300, 42);
        let model = XgBoost::fit(&xs, &ys, &XgBoostConfig::default());
        assert!(accuracy(&model, &xs, &ys) > 0.95);
    }

    #[test]
    fn heavy_regularisation_dampens_leaves() {
        let (xs, ys) = testdata::linear(200, 43);
        let light = XgBoost::fit(
            &xs,
            &ys,
            &XgBoostConfig {
                lambda: 0.01,
                rounds: 1,
                ..Default::default()
            },
        );
        let heavy = XgBoost::fit(
            &xs,
            &ys,
            &XgBoostConfig {
                lambda: 1e6,
                rounds: 1,
                ..Default::default()
            },
        );
        // With huge λ, leaf values (and thus score deviation from the prior)
        // collapse towards zero.
        let dev = |m: &XgBoost| {
            xs.iter()
                .map(|x| (m.decision_function(x) - m.base_score).abs())
                .sum::<f64>()
        };
        assert!(dev(&heavy) < dev(&light) * 0.01);
    }

    #[test]
    fn gamma_prunes_marginal_splits() {
        let (xs, ys) = testdata::xor(300, 44);
        let no_gamma = XgBoost::fit(
            &xs,
            &ys,
            &XgBoostConfig {
                gamma: 0.0,
                rounds: 10,
                ..Default::default()
            },
        );
        let big_gamma = XgBoost::fit(
            &xs,
            &ys,
            &XgBoostConfig {
                gamma: 1e9,
                rounds: 10,
                ..Default::default()
            },
        );
        // With an impossible gain requirement every tree is a single leaf, so
        // training accuracy falls to the prior.
        assert!(accuracy(&no_gamma, &xs, &ys) > accuracy(&big_gamma, &xs, &ys));
    }
}
