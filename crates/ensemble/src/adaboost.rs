//! AdaBoost (SAMME / discrete AdaBoost over decision stumps).

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::tree::{DecisionTree, TreeConfig};
use crate::Classifier;

/// AdaBoost hyper-parameters.
#[derive(Debug, Clone)]
pub struct AdaBoostConfig {
    /// Number of boosting rounds (stumps).
    pub rounds: usize,
    /// Depth of each weak learner (1 = classic stump).
    pub depth: usize,
    /// Seed (feature subsampling inside trees; none by default, kept for
    /// API uniformity).
    pub seed: u64,
}

impl Default for AdaBoostConfig {
    fn default() -> Self {
        Self {
            rounds: 50,
            depth: 1,
            seed: 0,
        }
    }
}

/// A fitted AdaBoost ensemble.
#[derive(Debug)]
pub struct AdaBoost {
    stumps: Vec<(DecisionTree, f64)>,
}

impl AdaBoost {
    /// Fit with the SAMME weight updates: per round, fit a weighted stump,
    /// compute weighted error ε, stump weight α = ½ln((1−ε)/ε), and
    /// reweight samples by `exp(∓α)`.
    pub fn fit(xs: &[Vec<f64>], ys: &[bool], cfg: &AdaBoostConfig) -> Self {
        assert_eq!(xs.len(), ys.len());
        assert!(!xs.is_empty(), "cannot fit on no samples");
        let n = xs.len();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut weights = vec![1.0 / n as f64; n];
        let tree_cfg = TreeConfig {
            max_depth: cfg.depth,
            ..Default::default()
        };

        let mut stumps = Vec::with_capacity(cfg.rounds);
        for _ in 0..cfg.rounds {
            let stump = DecisionTree::fit(xs, ys, &weights, &tree_cfg, &mut rng);
            let eps: f64 = xs
                .iter()
                .zip(ys)
                .zip(&weights)
                .filter(|((x, &y), _)| stump.predict(x) != y)
                .map(|(_, &w)| w)
                .sum();
            let eps = eps.clamp(1e-10, 1.0 - 1e-10);
            if eps >= 0.5 {
                // Weak learner no better than chance: stop boosting.
                if stumps.is_empty() {
                    stumps.push((stump, 1.0));
                }
                break;
            }
            let alpha = 0.5 * ((1.0 - eps) / eps).ln();
            for ((x, &y), w) in xs.iter().zip(ys).zip(weights.iter_mut()) {
                let correct = stump.predict(x) == y;
                *w *= if correct { (-alpha).exp() } else { alpha.exp() };
            }
            let total: f64 = weights.iter().sum();
            weights.iter_mut().for_each(|w| *w /= total);
            stumps.push((stump, alpha));
            if eps <= 1e-9 {
                break; // perfect learner; additional rounds are no-ops
            }
        }
        AdaBoost { stumps }
    }

    /// Number of weak learners kept.
    pub fn len(&self) -> usize {
        self.stumps.len()
    }

    /// True if no learner was kept (cannot happen after `fit`).
    pub fn is_empty(&self) -> bool {
        self.stumps.is_empty()
    }

    /// The signed ensemble margin in `ℝ` (positive = positive class).
    pub fn decision_function(&self, x: &[f64]) -> f64 {
        self.stumps
            .iter()
            .map(|(s, a)| a * if s.predict(x) { 1.0 } else { -1.0 })
            .sum()
    }
}

impl Classifier for AdaBoost {
    fn predict_proba(&self, x: &[f64]) -> f64 {
        // Logistic squash of the margin: monotone, in (0,1).
        1.0 / (1.0 + (-2.0 * self.decision_function(x)).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{accuracy, testdata};

    #[test]
    fn boosts_stumps_past_xor() {
        let (xs, ys) = testdata::xor(500, 7);
        let model = AdaBoost::fit(
            &xs,
            &ys,
            &AdaBoostConfig {
                rounds: 100,
                depth: 2, // depth-2 weak learners solve XOR regionally
                ..Default::default()
            },
        );
        assert!(accuracy(&model, &xs, &ys) > 0.9);
    }

    #[test]
    fn linear_data_needs_few_rounds() {
        let (xs, ys) = testdata::linear(300, 8);
        let model = AdaBoost::fit(&xs, &ys, &AdaBoostConfig::default());
        assert!(accuracy(&model, &xs, &ys) > 0.9);
    }

    #[test]
    fn margin_sign_matches_prediction() {
        let (xs, ys) = testdata::linear(200, 9);
        let model = AdaBoost::fit(&xs, &ys, &AdaBoostConfig::default());
        for x in xs.iter().take(20) {
            assert_eq!(model.decision_function(x) >= 0.0, model.predict(x));
        }
    }

    #[test]
    fn perfect_stump_short_circuits() {
        let xs = vec![vec![0.0], vec![0.1], vec![0.9], vec![1.0]];
        let ys = vec![false, false, true, true];
        let model = AdaBoost::fit(
            &xs,
            &ys,
            &AdaBoostConfig {
                rounds: 50,
                ..Default::default()
            },
        );
        assert!(model.len() <= 2, "kept {} stumps", model.len());
        assert_eq!(accuracy(&model, &xs, &ys), 1.0);
    }
}
