//! Random forest: bootstrap bagging + √d feature subsampling.

use rand::prelude::*;
use rand::rngs::StdRng;

use crate::tree::{DecisionTree, TreeConfig};
use crate::Classifier;

/// Random-forest hyper-parameters.
#[derive(Debug, Clone)]
pub struct RandomForestConfig {
    /// Number of trees.
    pub trees: usize,
    /// Per-tree depth limit.
    pub max_depth: usize,
    /// Features per split; `None` = ⌈√d⌉.
    pub max_features: Option<usize>,
    /// RNG seed (bootstrap + feature subsampling).
    pub seed: u64,
}

impl Default for RandomForestConfig {
    fn default() -> Self {
        Self {
            trees: 60,
            max_depth: 10,
            max_features: None,
            seed: 0,
        }
    }
}

/// A fitted random forest.
#[derive(Debug)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
}

impl RandomForest {
    /// Fit `cfg.trees` trees, each on a bootstrap resample with per-split
    /// feature subsampling.
    pub fn fit(xs: &[Vec<f64>], ys: &[bool], cfg: &RandomForestConfig) -> Self {
        assert_eq!(xs.len(), ys.len());
        assert!(!xs.is_empty(), "cannot fit on no samples");
        let n = xs.len();
        let d = xs[0].len();
        let mtry = cfg
            .max_features
            .unwrap_or_else(|| (d as f64).sqrt().ceil() as usize)
            .clamp(1, d);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let tree_cfg = TreeConfig {
            max_depth: cfg.max_depth,
            min_samples_split: 2,
            max_features: Some(mtry),
        };

        let mut trees = Vec::with_capacity(cfg.trees);
        let mut bxs: Vec<Vec<f64>> = Vec::with_capacity(n);
        let mut bys: Vec<bool> = Vec::with_capacity(n);
        let weights = vec![1.0; n];
        for _ in 0..cfg.trees {
            bxs.clear();
            bys.clear();
            for _ in 0..n {
                let i = rng.gen_range(0..n);
                bxs.push(xs[i].clone());
                bys.push(ys[i]);
            }
            trees.push(DecisionTree::fit(&bxs, &bys, &weights, &tree_cfg, &mut rng));
        }
        RandomForest { trees }
    }

    /// Number of trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// True if the forest has no trees.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }
}

impl Classifier for RandomForest {
    fn predict_proba(&self, x: &[f64]) -> f64 {
        if self.trees.is_empty() {
            return 0.5;
        }
        self.trees.iter().map(|t| t.predict_proba(x)).sum::<f64>() / self.trees.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{accuracy, testdata};

    #[test]
    fn fits_xor() {
        let (xs, ys) = testdata::xor(500, 21);
        let model = RandomForest::fit(&xs, &ys, &RandomForestConfig::default());
        assert!(accuracy(&model, &xs, &ys) > 0.9);
    }

    #[test]
    fn deterministic_given_seed() {
        let (xs, ys) = testdata::linear(200, 22);
        let cfg = RandomForestConfig {
            trees: 10,
            ..Default::default()
        };
        let a = RandomForest::fit(&xs, &ys, &cfg);
        let b = RandomForest::fit(&xs, &ys, &cfg);
        for x in xs.iter().take(10) {
            assert_eq!(a.predict_proba(x), b.predict_proba(x));
        }
    }

    #[test]
    fn probability_in_unit_interval() {
        let (xs, ys) = testdata::linear(200, 23);
        let model = RandomForest::fit(&xs, &ys, &RandomForestConfig::default());
        for x in &xs {
            let p = model.predict_proba(x);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn tree_count_matches_config() {
        let (xs, ys) = testdata::linear(50, 24);
        let model = RandomForest::fit(
            &xs,
            &ys,
            &RandomForestConfig {
                trees: 7,
                ..Default::default()
            },
        );
        assert_eq!(model.len(), 7);
    }
}
