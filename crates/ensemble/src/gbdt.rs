//! Gradient-boosted decision trees with logistic loss (Friedman 2001).
//!
//! Shared gradient-tree machinery lives here and is reused by the
//! XGBoost-style learner (which changes the split criterion and adds
//! regularisation).

use crate::Classifier;

/// Split criterion for a gradient tree.
#[derive(Debug, Clone, Copy)]
pub(crate) enum SplitCriterion {
    /// Classic GBDT: maximise variance reduction of the gradients
    /// (hessians participate only in leaf values).
    Variance,
    /// XGBoost: maximise the second-order gain with L2 penalty `lambda`;
    /// splits must gain more than `gamma`.
    Gain {
        /// L2 regularisation on leaf weights.
        lambda: f64,
        /// Minimum gain to accept a split.
        gamma: f64,
    },
}

#[derive(Debug, Clone)]
pub(crate) enum GNode {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A regression tree over (gradient, hessian) targets.
#[derive(Debug, Clone)]
pub(crate) struct GradTree {
    nodes: Vec<GNode>,
}

impl GradTree {
    pub(crate) fn fit(
        xs: &[Vec<f64>],
        grad: &[f64],
        hess: &[f64],
        max_depth: usize,
        min_child_weight: f64,
        criterion: SplitCriterion,
    ) -> Self {
        let mut tree = GradTree { nodes: Vec::new() };
        let idx: Vec<usize> = (0..xs.len()).collect();
        tree.grow(
            xs,
            grad,
            hess,
            &idx,
            max_depth,
            min_child_weight,
            criterion,
            0,
        );
        tree
    }

    #[allow(clippy::too_many_arguments)]
    fn grow(
        &mut self,
        xs: &[Vec<f64>],
        grad: &[f64],
        hess: &[f64],
        idx: &[usize],
        max_depth: usize,
        min_child_weight: f64,
        criterion: SplitCriterion,
        depth: usize,
    ) -> usize {
        let g: f64 = idx.iter().map(|&i| grad[i]).sum();
        let h: f64 = idx.iter().map(|&i| hess[i]).sum();
        let lambda = match criterion {
            SplitCriterion::Gain { lambda, .. } => lambda,
            SplitCriterion::Variance => 0.0,
        };
        // Newton leaf value −G/(H+λ).
        let leaf_value = if h + lambda > 0.0 {
            -g / (h + lambda)
        } else {
            0.0
        };
        let make_leaf = |nodes: &mut Vec<GNode>| {
            nodes.push(GNode::Leaf { value: leaf_value });
            nodes.len() - 1
        };
        if depth >= max_depth || idx.len() < 2 {
            return make_leaf(&mut self.nodes);
        }

        let score = |g: f64, h: f64| -> f64 {
            match criterion {
                // Variance reduction over gradients ∝ G²/count.
                SplitCriterion::Variance => {
                    if h > 0.0 {
                        g * g / idxless_count(h)
                    } else {
                        0.0
                    }
                }
                SplitCriterion::Gain { lambda, .. } => g * g / (h + lambda),
            }
        };
        // For Variance we score with counts, so feed hess=1 per sample.
        fn idxless_count(h: f64) -> f64 {
            h
        }
        let (sg, sh) = match criterion {
            SplitCriterion::Variance => (g, idx.len() as f64),
            SplitCriterion::Gain { .. } => (g, h),
        };
        let parent_score = score(sg, sh);

        let mut best: Option<(usize, f64, f64)> = None;
        let mut order: Vec<usize> = idx.to_vec();
        let num_features = xs[0].len();
        let total_w: f64 = idx.iter().map(|&i| hess[i]).sum();
        // `f` walks the feature (column) axis of the row-major `xs`, so the
        // iterator rewrite clippy suggests (over rows) does not apply.
        #[allow(clippy::needless_range_loop)]
        for f in 0..num_features {
            order.sort_unstable_by(|&a, &b| xs[a][f].total_cmp(&xs[b][f]));
            let mut lg = 0.0;
            let mut lh = 0.0;
            let mut lw = 0.0; // hessian mass for min_child_weight
            for k in 0..order.len() - 1 {
                let i = order[k];
                lg += grad[i];
                lh += match criterion {
                    SplitCriterion::Variance => 1.0,
                    SplitCriterion::Gain { .. } => hess[i],
                };
                lw += hess[i];
                if xs[i][f] == xs[order[k + 1]][f] {
                    continue;
                }
                let rw = total_w - lw;
                if lw < min_child_weight || rw < min_child_weight {
                    continue;
                }
                let rg = sg - lg;
                let rh = sh - lh;
                let gain = score(lg, lh) + score(rg, rh) - parent_score;
                if best.is_none_or(|(_, _, bg)| gain > bg) {
                    best = Some((f, (xs[i][f] + xs[order[k + 1]][f]) / 2.0, gain));
                }
            }
        }

        let min_gain = match criterion {
            SplitCriterion::Variance => 1e-12,
            SplitCriterion::Gain { gamma, .. } => gamma.max(1e-12),
        };
        let Some((feature, threshold, gain)) = best else {
            return make_leaf(&mut self.nodes);
        };
        if gain < min_gain {
            return make_leaf(&mut self.nodes);
        }

        let (li, ri): (Vec<usize>, Vec<usize>) =
            idx.iter().partition(|&&i| xs[i][feature] <= threshold);
        let slot = self.nodes.len();
        self.nodes.push(GNode::Leaf { value: leaf_value });
        let left = self.grow(
            xs,
            grad,
            hess,
            &li,
            max_depth,
            min_child_weight,
            criterion,
            depth + 1,
        );
        let right = self.grow(
            xs,
            grad,
            hess,
            &ri,
            max_depth,
            min_child_weight,
            criterion,
            depth + 1,
        );
        self.nodes[slot] = GNode::Split {
            feature,
            threshold,
            left,
            right,
        };
        slot
    }

    pub(crate) fn predict(&self, x: &[f64]) -> f64 {
        let mut cur = 0usize;
        loop {
            match &self.nodes[cur] {
                GNode::Leaf { value } => return *value,
                GNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    cur = if x[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    }
                }
            }
        }
    }
}

/// GBDT hyper-parameters.
#[derive(Debug, Clone)]
pub struct GbdtConfig {
    /// Boosting rounds.
    pub rounds: usize,
    /// Per-tree depth.
    pub max_depth: usize,
    /// Shrinkage.
    pub learning_rate: f64,
}

impl Default for GbdtConfig {
    fn default() -> Self {
        Self {
            rounds: 80,
            max_depth: 4,
            learning_rate: 0.1,
        }
    }
}

/// A fitted GBDT binary classifier.
#[derive(Debug)]
pub struct Gbdt {
    base_score: f64,
    trees: Vec<GradTree>,
    learning_rate: f64,
}

impl Gbdt {
    /// Fit with logistic loss: per round, gradients `p − y` and hessians
    /// `p(1−p)` feed a variance-split tree with Newton leaf values.
    pub fn fit(xs: &[Vec<f64>], ys: &[bool], cfg: &GbdtConfig) -> Self {
        assert_eq!(xs.len(), ys.len());
        assert!(!xs.is_empty(), "cannot fit on no samples");
        let n = xs.len();
        let pos = ys.iter().filter(|&&y| y).count() as f64;
        let prior = (pos / n as f64).clamp(1e-6, 1.0 - 1e-6);
        let base_score = (prior / (1.0 - prior)).ln();

        let mut raw = vec![base_score; n];
        let mut grad = vec![0.0; n];
        let mut hess = vec![0.0; n];
        let mut trees = Vec::with_capacity(cfg.rounds);
        for _ in 0..cfg.rounds {
            for i in 0..n {
                let p = 1.0 / (1.0 + (-raw[i]).exp());
                grad[i] = p - if ys[i] { 1.0 } else { 0.0 };
                hess[i] = (p * (1.0 - p)).max(1e-12);
            }
            let tree = GradTree::fit(
                xs,
                &grad,
                &hess,
                cfg.max_depth,
                0.0,
                SplitCriterion::Variance,
            );
            for (i, x) in xs.iter().enumerate() {
                raw[i] += cfg.learning_rate * tree.predict(x);
            }
            trees.push(tree);
        }
        Gbdt {
            base_score,
            trees,
            learning_rate: cfg.learning_rate,
        }
    }

    /// Raw additive score (log-odds scale).
    pub fn decision_function(&self, x: &[f64]) -> f64 {
        self.base_score + self.learning_rate * self.trees.iter().map(|t| t.predict(x)).sum::<f64>()
    }
}

impl Classifier for Gbdt {
    fn predict_proba(&self, x: &[f64]) -> f64 {
        1.0 / (1.0 + (-self.decision_function(x)).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{accuracy, testdata};

    #[test]
    fn fits_xor() {
        let (xs, ys) = testdata::xor(500, 31);
        let model = Gbdt::fit(&xs, &ys, &GbdtConfig::default());
        assert!(accuracy(&model, &xs, &ys) > 0.93);
    }

    #[test]
    fn fits_linear() {
        let (xs, ys) = testdata::linear(300, 32);
        let model = Gbdt::fit(&xs, &ys, &GbdtConfig::default());
        assert!(accuracy(&model, &xs, &ys) > 0.95);
    }

    #[test]
    fn more_rounds_do_not_hurt_train_accuracy() {
        let (xs, ys) = testdata::xor(300, 33);
        let short = Gbdt::fit(
            &xs,
            &ys,
            &GbdtConfig {
                rounds: 5,
                ..Default::default()
            },
        );
        let long = Gbdt::fit(
            &xs,
            &ys,
            &GbdtConfig {
                rounds: 100,
                ..Default::default()
            },
        );
        assert!(accuracy(&long, &xs, &ys) >= accuracy(&short, &xs, &ys));
    }

    #[test]
    fn base_score_reflects_class_prior() {
        let xs = vec![vec![0.0]; 10];
        let ys = vec![true, true, true, true, true, true, true, true, true, false];
        let model = Gbdt::fit(
            &xs,
            &ys,
            &GbdtConfig {
                rounds: 0,
                ..Default::default()
            },
        );
        assert!((model.predict_proba(&[0.0]) - 0.9).abs() < 1e-9);
    }
}
