//! Corpus persistence as JSON-lines.
//!
//! The first line is a header record (string tables, author→name map,
//! config); each following line is one `(paper, truth)` record. JSONL keeps
//! memory flat on load and diffs well.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::generator::CorpusConfig;
use crate::model::{AuthorId, Corpus, NameId, Paper};

/// Errors from corpus I/O.
#[derive(Debug)]
pub enum CorpusIoError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// Malformed JSON or record structure.
    Format(String),
}

impl std::fmt::Display for CorpusIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CorpusIoError::Io(e) => write!(f, "corpus io error: {e}"),
            CorpusIoError::Format(m) => write!(f, "corpus format error: {m}"),
        }
    }
}

impl std::error::Error for CorpusIoError {}

impl From<std::io::Error> for CorpusIoError {
    fn from(e: std::io::Error) -> Self {
        CorpusIoError::Io(e)
    }
}

#[derive(Serialize, Deserialize)]
struct Header {
    name_strings: Vec<String>,
    venue_strings: Vec<String>,
    author_names: Vec<NameId>,
    config: Option<CorpusConfig>,
}

#[derive(Serialize, Deserialize)]
struct Record {
    paper: Paper,
    truth: Vec<AuthorId>,
}

/// Write a corpus to `path` as JSONL (header line + one line per paper).
pub fn save_jsonl(corpus: &Corpus, path: &Path) -> Result<(), CorpusIoError> {
    let mut w = BufWriter::new(File::create(path)?);
    let header = Header {
        name_strings: corpus.name_strings.clone(),
        venue_strings: corpus.venue_strings.clone(),
        author_names: corpus.author_names.clone(),
        config: corpus.config.clone(),
    };
    serde_json::to_writer(&mut w, &header).map_err(|e| CorpusIoError::Format(e.to_string()))?;
    w.write_all(b"\n")?;
    for (paper, truth) in corpus.papers.iter().zip(&corpus.truth) {
        let rec = Record {
            paper: paper.clone(),
            truth: truth.clone(),
        };
        serde_json::to_writer(&mut w, &rec).map_err(|e| CorpusIoError::Format(e.to_string()))?;
        w.write_all(b"\n")?;
    }
    w.flush()?;
    Ok(())
}

/// Read a corpus previously written by [`save_jsonl`]. Validates consistency.
pub fn load_jsonl(path: &Path) -> Result<Corpus, CorpusIoError> {
    let mut reader = BufReader::new(File::open(path)?);
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(CorpusIoError::Format("empty corpus file".into()));
    }
    let header: Header =
        serde_json::from_str(&line).map_err(|e| CorpusIoError::Format(e.to_string()))?;
    let mut papers = Vec::new();
    let mut truth = Vec::new();
    line.clear();
    while reader.read_line(&mut line)? != 0 {
        if line.trim().is_empty() {
            line.clear();
            continue;
        }
        let rec: Record =
            serde_json::from_str(&line).map_err(|e| CorpusIoError::Format(e.to_string()))?;
        papers.push(rec.paper);
        truth.push(rec.truth);
        line.clear();
    }
    let corpus = Corpus {
        papers,
        name_strings: header.name_strings,
        venue_strings: header.venue_strings,
        truth,
        author_names: header.author_names,
        config: header.config,
    };
    corpus.validate().map_err(CorpusIoError::Format)?;
    Ok(corpus)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::CorpusConfig;

    #[test]
    fn roundtrip_preserves_corpus() {
        let c = Corpus::generate(&CorpusConfig {
            num_authors: 100,
            num_papers: 300,
            seed: 3,
            ..Default::default()
        });
        let dir = std::env::temp_dir().join("iuad-corpus-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.jsonl");
        save_jsonl(&c, &path).unwrap();
        let back = load_jsonl(&path).unwrap();
        assert_eq!(c.papers, back.papers);
        assert_eq!(c.truth, back.truth);
        assert_eq!(c.name_strings, back.name_strings);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_empty_file() {
        let dir = std::env::temp_dir().join("iuad-corpus-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.jsonl");
        std::fs::write(&path, "").unwrap();
        assert!(matches!(load_jsonl(&path), Err(CorpusIoError::Format(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = std::env::temp_dir().join("iuad-corpus-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.jsonl");
        std::fs::write(&path, "not json\n").unwrap();
        assert!(load_jsonl(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
