//! Synthetic author-name pools.
//!
//! Name ambiguity in DBLP is driven by transliterated names drawn from small
//! pools of very common surnames and given names ("Wei Wang" matches 224
//! DBLP entries). We reproduce that mechanism: full names are formed from a
//! Zipf-weighted surname pool crossed with a given-name pool, so a small set
//! of names is shared by many authors while the long tail is unique.

use rand::prelude::*;

/// Frequent romanised surnames (rank-ordered; Zipf-weighted at sampling time).
const SURNAMES: &[&str] = &[
    "wang", "li", "zhang", "liu", "chen", "yang", "huang", "zhao", "wu", "zhou", "xu", "sun", "ma",
    "zhu", "hu", "guo", "he", "gao", "lin", "luo", "zheng", "liang", "xie", "tang", "song", "deng",
    "han", "feng", "cao", "peng", "smith", "johnson", "brown", "miller", "davis", "garcia", "kim",
    "lee", "park", "singh",
];

/// Frequent romanised given names.
const GIVEN: &[&str] = &[
    "wei", "min", "jing", "li", "yan", "fang", "lei", "jun", "yang", "tao", "ming", "chao", "hui",
    "ping", "gang", "hong", "xin", "bo", "jian", "qiang", "na", "yu", "feng", "yong", "bin",
    "chen", "dan", "fei", "hao", "kai", "lin", "mei", "ning", "peng", "qing", "rui", "shan",
    "ting", "xia", "ying", "john", "david", "maria", "anna", "james", "robert", "emily", "sara",
    "tom", "alex",
];

/// A deterministic name sampler.
///
/// Given names are either a single syllable (heavily Zipf-weighted → the
/// "Wei Wang" collision mass) or a two-syllable compound (mostly unique —
/// the long tail of DBLP names). This reproduces DBLP's regime where *most*
/// names are unambiguous but a popular minority is shared by many authors;
/// a small cross-product pool would instead make every name ambiguous and
/// break the stable-relation premise of IUAD Stage 1.
#[derive(Debug, Clone)]
pub struct NamePools {
    surname_weights: Vec<f64>,
    given_weights: Vec<f64>,
    /// Probability that a given name is a single syllable.
    single_given_prob: f64,
}

/// Number of compound (two-syllable) given names.
const GIVEN_COMPOUND: usize = GIVEN_LEN * GIVEN_LEN;
/// Total given-name space: singles first, then compounds.
const GIVEN_TOTAL: usize = GIVEN_LEN + GIVEN_COMPOUND;
const GIVEN_LEN: usize = 50;

impl Default for NamePools {
    fn default() -> Self {
        Self::new(1.0, 0.7)
    }
}

impl NamePools {
    /// Create pools with Zipf exponents for surnames and (single-syllable)
    /// given names. Larger exponents concentrate mass on the most common
    /// names and thus raise the expected ambiguity (authors per name).
    pub fn new(surname_zipf: f64, given_zipf: f64) -> Self {
        let zipf =
            |n: usize, s: f64| -> Vec<f64> { (1..=n).map(|r| 1.0 / (r as f64).powf(s)).collect() };
        Self {
            surname_weights: zipf(SURNAMES.len(), surname_zipf),
            given_weights: zipf(GIVEN.len(), given_zipf),
            single_given_prob: 0.25,
        }
    }

    /// Number of distinct full names representable.
    pub fn capacity(&self) -> usize {
        SURNAMES.len() * GIVEN_TOTAL
    }

    /// Sample a full name, returned as `(index, "given surname")`. The index
    /// is stable across calls and identifies the full name uniquely.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> (usize, String) {
        let s = weighted_index(&self.surname_weights, rng);
        let g = if rng.gen::<f64>() < self.single_given_prob {
            weighted_index(&self.given_weights, rng)
        } else {
            let g1 = weighted_index(&self.given_weights, rng);
            let g2 = weighted_index(&self.given_weights, rng);
            GIVEN_LEN + g1 * GIVEN_LEN + g2
        };
        (s * GIVEN_TOTAL + g, self.render(s, g))
    }

    fn render(&self, s: usize, g: usize) -> String {
        if g < GIVEN_LEN {
            format!("{} {}", GIVEN[g], SURNAMES[s])
        } else {
            let c = g - GIVEN_LEN;
            format!(
                "{}{} {}",
                GIVEN[c / GIVEN_LEN],
                GIVEN[c % GIVEN_LEN],
                SURNAMES[s]
            )
        }
    }

    /// Reconstruct the string for a name index produced by [`Self::sample`].
    pub fn name_string(&self, index: usize) -> String {
        self.render(index / GIVEN_TOTAL, index % GIVEN_TOTAL)
    }
}

/// Sample an index proportionally to `weights` (not necessarily normalised).
pub(crate) fn weighted_index<R: Rng + ?Sized>(weights: &[f64], rng: &mut R) -> usize {
    debug_assert!(!weights.is_empty());
    let total: f64 = weights.iter().sum();
    let mut t = rng.gen::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        t -= w;
        if t <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;

    #[test]
    fn sample_roundtrips_through_index() {
        let pools = NamePools::default();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let (idx, s) = pools.sample(&mut rng);
            assert_eq!(pools.name_string(idx), s);
        }
    }

    #[test]
    fn zipf_concentrates_on_common_surnames() {
        let pools = NamePools::new(1.2, 0.7);
        let mut rng = StdRng::seed_from_u64(2);
        let mut wang_or_li = 0usize;
        let n = 10_000;
        for _ in 0..n {
            let (_, s) = pools.sample(&mut rng);
            if s.ends_with(" wang") || s.ends_with(" li") {
                wang_or_li += 1;
            }
        }
        // Top-2 of 40 surnames should take far more than 2/40 = 5% of mass.
        assert!(wang_or_li as f64 / n as f64 > 0.15, "got {wang_or_li}/{n}");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = [0.0, 1.0, 0.0];
        for _ in 0..50 {
            assert_eq!(weighted_index(&w, &mut rng), 1);
        }
    }

    #[test]
    fn capacity_matches_pools() {
        let pools = NamePools::default();
        assert_eq!(pools.capacity(), 40 * (50 + 50 * 50));
    }

    #[test]
    fn compound_names_render_and_roundtrip() {
        let pools = NamePools::default();
        let mut rng = StdRng::seed_from_u64(9);
        let mut saw_compound = false;
        for _ in 0..200 {
            let (idx, s) = pools.sample(&mut rng);
            assert_eq!(pools.name_string(idx), s);
            let given = s.split(' ').next().unwrap();
            if given.len() > 6 {
                saw_compound = true;
            }
        }
        assert!(saw_compound, "expected some compound given names");
    }
}
