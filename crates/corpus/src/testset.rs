//! Testing-dataset selection, mirroring the paper's §VI-A1 protocol.
//!
//! The paper intersects DBLP with the labelled DAminer set and obtains 50
//! ambiguous names / 336 authors. We select the analogous set from the
//! synthetic ground truth: names shared by at least `min_authors` authors
//! with at least `min_papers` papers, ranked by ambiguity, capped at
//! `max_names`.

use serde::{Deserialize, Serialize};

use crate::model::{AuthorId, Corpus, NameId};

/// One row of the Table-II-style descriptive statistics.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TestName {
    /// The ambiguous name.
    pub name: NameId,
    /// Display string for the name.
    pub name_string: String,
    /// Ground-truth authors bearing the name.
    pub authors: Vec<AuthorId>,
    /// Number of papers mentioning the name.
    pub num_papers: usize,
}

/// The evaluation set: a list of ambiguous names with their statistics.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TestSet {
    /// Selected names, most ambiguous first.
    pub names: Vec<TestName>,
}

impl TestSet {
    /// Total distinct authors across test names (Table II bottom row).
    pub fn total_authors(&self) -> usize {
        self.names.iter().map(|n| n.authors.len()).sum()
    }

    /// Total papers across test names.
    pub fn total_papers(&self) -> usize {
        self.names.iter().map(|n| n.num_papers).sum()
    }
}

/// Select up to `max_names` names shared by ≥ `min_authors` authors and
/// mentioned by ≥ `min_papers` papers. Deterministic: sorted by
/// (#authors desc, #papers desc, name id).
pub fn select_test_names(
    corpus: &Corpus,
    min_authors: usize,
    min_papers: usize,
    max_names: usize,
) -> TestSet {
    let by_name = corpus.authors_by_name();
    let papers_by_name = corpus.papers_by_name();
    let mut rows: Vec<TestName> = Vec::new();
    for (n, authors) in by_name.iter().enumerate() {
        if authors.len() < min_authors {
            continue;
        }
        let name = NameId::from(n);
        let num_papers = papers_by_name.get(&name).map_or(0, Vec::len);
        if num_papers < min_papers {
            continue;
        }
        // Only count authors that actually appear in the corpus' papers.
        let active: Vec<AuthorId> = {
            let part = corpus.truth_partition(name);
            let mut a: Vec<AuthorId> = part.keys().copied().collect();
            a.sort_unstable();
            a
        };
        if active.len() < min_authors {
            continue;
        }
        rows.push(TestName {
            name,
            name_string: corpus.name_strings[n].clone(),
            authors: active,
            num_papers,
        });
    }
    rows.sort_by(|a, b| {
        b.authors
            .len()
            .cmp(&a.authors.len())
            .then(b.num_papers.cmp(&a.num_papers))
            .then(a.name.cmp(&b.name))
    });
    rows.truncate(max_names);
    TestSet { names: rows }
}

/// [`select_test_names`] with an explicit RNG seed: instead of the top-k
/// most ambiguous names, draw a seeded uniform sample of the eligible names
/// so the evaluation set spans the whole ambiguity range. The returned set
/// is fully reproducible from `seed` (recorded per scenario in
/// `SCENARIOS.json`) and is sorted with the same ambiguity ordering as the
/// deterministic selector.
pub fn select_test_names_seeded(
    corpus: &Corpus,
    min_authors: usize,
    min_papers: usize,
    max_names: usize,
    seed: u64,
) -> TestSet {
    use rand::prelude::*;
    let mut all = select_test_names(corpus, min_authors, min_papers, usize::MAX).names;
    if all.len() > max_names {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        all.shuffle(&mut rng);
        all.truncate(max_names);
        all.sort_by(|a, b| {
            b.authors
                .len()
                .cmp(&a.authors.len())
                .then(b.num_papers.cmp(&a.num_papers))
                .then(a.name.cmp(&b.name))
        });
    }
    TestSet { names: all }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::CorpusConfig;

    fn corpus() -> Corpus {
        Corpus::generate(&CorpusConfig {
            num_authors: 1_500,
            num_papers: 6_000,
            seed: 5,
            ..Default::default()
        })
    }

    #[test]
    fn selection_is_ambiguous_and_bounded() {
        let c = corpus();
        let ts = select_test_names(&c, 2, 5, 50);
        assert!(!ts.names.is_empty());
        assert!(ts.names.len() <= 50);
        for row in &ts.names {
            assert!(row.authors.len() >= 2, "{row:?}");
            assert!(row.num_papers >= 5, "{row:?}");
        }
    }

    #[test]
    fn selection_sorted_by_ambiguity() {
        let c = corpus();
        let ts = select_test_names(&c, 2, 5, 50);
        for w in ts.names.windows(2) {
            assert!(w[0].authors.len() >= w[1].authors.len());
        }
    }

    #[test]
    fn totals_aggregate_rows() {
        let c = corpus();
        let ts = select_test_names(&c, 2, 5, 10);
        assert_eq!(
            ts.total_authors(),
            ts.names.iter().map(|r| r.authors.len()).sum::<usize>()
        );
        assert_eq!(
            ts.total_papers(),
            ts.names.iter().map(|r| r.num_papers).sum::<usize>()
        );
    }

    #[test]
    fn seeded_selection_is_reproducible_and_eligible() {
        let c = corpus();
        let a = select_test_names_seeded(&c, 2, 3, 12, 77);
        let b = select_test_names_seeded(&c, 2, 3, 12, 77);
        assert_eq!(a, b, "same seed must reproduce the same test set");
        assert!(a.names.len() <= 12);
        for row in &a.names {
            assert!(row.authors.len() >= 2);
            assert!(row.num_papers >= 3);
        }
        let other = select_test_names_seeded(&c, 2, 3, 12, 78);
        // Different seeds generally sample different names (not guaranteed
        // in principle, but deterministic for this corpus).
        assert_ne!(a, other, "expected seed 78 to draw a different sample");
    }

    #[test]
    fn seeded_selection_without_pressure_matches_deterministic() {
        // When max_names exceeds the eligible pool, the seed is irrelevant
        // and the seeded selector degenerates to the deterministic one.
        let c = corpus();
        let det = select_test_names(&c, 3, 5, usize::MAX);
        let seeded = select_test_names_seeded(&c, 3, 5, usize::MAX, 123);
        assert_eq!(det, seeded);
    }

    #[test]
    fn active_authors_only() {
        // Authors listed for a test name must actually occur in the truth.
        let c = corpus();
        let ts = select_test_names(&c, 2, 5, 50);
        for row in &ts.names {
            let part = c.truth_partition(row.name);
            for a in &row.authors {
                assert!(part.contains_key(a));
            }
        }
    }
}
