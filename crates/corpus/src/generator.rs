//! Synthetic bibliographic corpus generator.
//!
//! The generator substitutes for the paper's DBLP snapshot (see DESIGN.md).
//! It produces the mechanisms IUAD exploits, not just matching marginals:
//!
//! * **Power-law productivity** — author paper counts are Pareto-distributed,
//!   so papers-per-name is heavy-tailed (Fig. 3a).
//! * **Sticky collaborations** — each author has a preferential-attachment
//!   collaborator neighbourhood with Pareto tie strengths, so name-pair
//!   co-occurrence frequencies are heavy-tailed (Fig. 3b) and η-SCRs exist.
//! * **Topical coherence** — titles and venues are drawn from an author's
//!   research topic, so the similarity functions γ₃..γ₆ carry signal.
//! * **Name collisions** — author names come from small Zipf-weighted pools,
//!   so many distinct authors share a name (the disambiguation task).

use rand::prelude::*;
use rand::rngs::StdRng;
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};

use crate::model::{AuthorId, Corpus, NameId, Paper, PaperId, VenueId};
use crate::names::{weighted_index, NamePools};

/// Everything the generator needs; all fields have sensible defaults.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusConfig {
    /// Number of distinct ground-truth authors.
    pub num_authors: usize,
    /// Number of papers to generate.
    pub num_papers: usize,
    /// Number of research topics (communities).
    pub num_topics: usize,
    /// Venues per topic.
    pub venues_per_topic: usize,
    /// Topic-specific vocabulary size per topic.
    pub words_per_topic: usize,
    /// Zipf exponent of the surname pool (higher = more ambiguity).
    pub surname_zipf: f64,
    /// Zipf exponent of the given-name pool.
    pub given_zipf: f64,
    /// Pareto shape of author productivity (lower = heavier tail).
    pub productivity_alpha: f64,
    /// Maximum number of co-authors *in addition to* the lead author.
    pub max_coauthors: usize,
    /// Mean of the (truncated geometric) additional-co-author count.
    pub mean_coauthors: f64,
    /// Probability that a co-author slot is filled from the lead's
    /// collaborator neighbourhood (vs a random same-topic author).
    pub tie_strength: f64,
    /// Probability that a paper includes one random cross-topic co-author.
    pub cross_topic_prob: f64,
    /// Earliest possible career start year.
    pub year_start: u16,
    /// Latest possible publication year.
    pub year_end: u16,
    /// Title length bounds (words).
    pub title_len: (usize, usize),
    /// Fraction of title words drawn from the general (stop-word-like) vocab.
    pub general_word_frac: f64,
    /// Probability that a paper's title is drawn from a *different* topic's
    /// vocabulary (interdisciplinary work, surveys): content noise that keeps
    /// any single evidence channel from being sufficient, as in real DBLP.
    pub title_noise: f64,
    /// Probability that a paper lands in a random global venue (workshops,
    /// satellite events).
    pub venue_noise: f64,
    /// RNG seed; all generation is deterministic given the config.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        Self {
            num_authors: 2_000,
            num_papers: 8_000,
            num_topics: 16,
            venues_per_topic: 6,
            words_per_topic: 250,
            surname_zipf: 0.8,
            given_zipf: 0.8,
            productivity_alpha: 1.6,
            max_coauthors: 7,
            mean_coauthors: 2.2,
            tie_strength: 0.8,
            cross_topic_prob: 0.08,
            year_start: 1990,
            year_end: 2020,
            title_len: (6, 12),
            general_word_frac: 0.35,
            title_noise: 0.20,
            venue_noise: 0.15,
            seed: 42,
        }
    }
}

/// Summary of what the generator actually produced, for logging and tests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratorReport {
    /// Distinct names generated.
    pub num_names: usize,
    /// Names shared by more than one author.
    pub ambiguous_names: usize,
    /// Maximum number of authors sharing one name.
    pub max_authors_per_name: usize,
    /// Total author-paper mentions.
    pub num_mentions: usize,
}

/// Common academic filler so that stop-word handling has something to do.
const GENERAL_WORDS: &[&str] = &[
    "a",
    "the",
    "of",
    "for",
    "with",
    "using",
    "on",
    "in",
    "an",
    "to",
    "and",
    "based",
    "approach",
    "method",
    "system",
    "analysis",
    "model",
    "towards",
    "novel",
    "efficient",
    "framework",
    "via",
    "study",
    "evaluation",
    "design",
];

/// Per-author state used during generation.
struct AuthorState {
    name: NameId,
    topic: usize,
    favourite_venue: VenueId,
    career: (u16, u16),
    productivity: f64,
    /// Collaborators with Pareto tie strengths (sticky repeat collaboration).
    neighbours: Vec<(u32, f64)>,
    /// The author's personal research niche: a small subset of the topic
    /// vocabulary they reuse across papers. Without this, all same-topic
    /// authors share one vocabulary and *any* content-based disambiguator
    /// (IUAD's γ₃/γ₄ included) can only separate topics, not authors.
    pet_words: Vec<usize>,
}

impl Corpus {
    /// Generate a corpus. Deterministic in `config` (including `seed`).
    pub fn generate(config: &CorpusConfig) -> Corpus {
        Self::generate_with_report(config).0
    }

    /// Generate a corpus together with a [`GeneratorReport`]. Equivalent to
    /// draining a [`PaperGenerator`] and calling
    /// [`PaperGenerator::into_corpus`] — the streamed path IS this path.
    pub fn generate_with_report(config: &CorpusConfig) -> (Corpus, GeneratorReport) {
        let mut generator = PaperGenerator::new(config);
        let mut papers = Vec::with_capacity(config.num_papers);
        let mut truth = Vec::with_capacity(config.num_papers);
        for (paper, authors) in generator.by_ref() {
            papers.push(paper);
            truth.push(authors);
        }
        generator.into_corpus(papers, truth)
    }
}

/// Streaming face of the generator: the up-front world model (names,
/// venues, authors, collaboration graph) is built eagerly by
/// [`PaperGenerator::new`], then papers are drawn one at a time via the
/// [`Iterator`] impl. Bit-identical to [`Corpus::generate`] — that path is
/// implemented on top of this one — but lets million-paper producers
/// consume papers in chunks (progress reporting, bounded transients)
/// instead of materialising intermediate structures beyond the corpus
/// itself.
pub struct PaperGenerator {
    config: CorpusConfig,
    rng: StdRng,
    name_strings: Vec<String>,
    venue_strings: Vec<String>,
    author_names: Vec<NameId>,
    authors: Vec<AuthorState>,
    by_topic: Vec<Vec<u32>>,
    lead_weights: Vec<f64>,
    next_pid: usize,
}

impl PaperGenerator {
    /// Build the generator world model. Deterministic in `config`.
    pub fn new(config: &CorpusConfig) -> PaperGenerator {
        assert!(config.num_authors > 0, "num_authors must be positive");
        assert!(config.num_topics > 0, "num_topics must be positive");
        assert!(
            config.year_start < config.year_end,
            "year range must be non-empty"
        );
        let mut rng = StdRng::seed_from_u64(config.seed);
        let pools = NamePools::new(config.surname_zipf, config.given_zipf);

        // --- Names -------------------------------------------------------
        let mut name_ids: FxHashMap<usize, NameId> = FxHashMap::default();
        let mut name_strings: Vec<String> = Vec::new();
        let mut author_names: Vec<NameId> = Vec::with_capacity(config.num_authors);
        for _ in 0..config.num_authors {
            let (idx, s) = pools.sample(&mut rng);
            let id = *name_ids.entry(idx).or_insert_with(|| {
                name_strings.push(s);
                NameId::from(name_strings.len() - 1)
            });
            author_names.push(id);
        }

        // --- Venues and vocabulary ----------------------------------------
        let mut venue_strings = Vec::with_capacity(config.num_topics * config.venues_per_topic);
        for t in 0..config.num_topics {
            for v in 0..config.venues_per_topic {
                venue_strings.push(format!("conf-t{t}-{v}"));
            }
        }
        // --- Authors --------------------------------------------------------
        let mut authors: Vec<AuthorState> = Vec::with_capacity(config.num_authors);
        for &name in &author_names {
            let topic = rng.gen_range(0..config.num_topics);
            let venue_base = topic * config.venues_per_topic;
            let favourite_venue =
                VenueId::from(venue_base + rng.gen_range(0..config.venues_per_topic));
            let start = rng.gen_range(config.year_start..config.year_end);
            let len = rng.gen_range(3..=25u16);
            let end = (start + len).min(config.year_end);
            // Pareto productivity, clamped to keep a single author from
            // dominating small corpora.
            let u: f64 = rng.gen::<f64>().max(1e-12);
            let productivity = u.powf(-1.0 / config.productivity_alpha).min(200.0);
            // A personal niche of ~12 topic words, Zipf-sampled so niches of
            // same-topic authors overlap on common words but differ on rare
            // ones.
            let mut pet_words = Vec::with_capacity(12);
            while pet_words.len() < 12.min(config.words_per_topic) {
                let w = zipf_rank(config.words_per_topic, 0.9, &mut rng);
                if !pet_words.contains(&w) {
                    pet_words.push(w);
                }
            }
            authors.push(AuthorState {
                name,
                topic,
                favourite_venue,
                career: (start, end),
                productivity,
                neighbours: Vec::new(),
                pet_words,
            });
        }

        // --- Collaboration graph: preferential attachment per topic --------
        let mut by_topic: Vec<Vec<u32>> = vec![Vec::new(); config.num_topics];
        for (a, st) in authors.iter().enumerate() {
            by_topic[st.topic].push(a as u32);
        }
        for members in &by_topic {
            // Urn of endpoints repeated by degree implements preferential
            // attachment without a heap.
            let mut urn: Vec<u32> = Vec::new();
            for (i, &a) in members.iter().enumerate() {
                if i == 0 {
                    continue;
                }
                let m = 1 + rng.gen_range(0..3usize).min(i - 1);
                let mut chosen: Vec<u32> = Vec::with_capacity(m);
                for _ in 0..m {
                    let pick = if urn.is_empty() || rng.gen::<f64>() < 0.25 {
                        members[rng.gen_range(0..i)]
                    } else {
                        urn[rng.gen_range(0..urn.len())]
                    };
                    if pick != a && !chosen.contains(&pick) {
                        chosen.push(pick);
                    }
                }
                for b in chosen {
                    // Pareto tie strength: a few very strong (stable) ties.
                    let u: f64 = rng.gen::<f64>().max(1e-12);
                    let strength = u.powf(-1.0 / 1.3).min(50.0);
                    authors[a as usize].neighbours.push((b, strength));
                    authors[b as usize].neighbours.push((a, strength));
                    urn.push(a);
                    urn.push(b);
                }
            }
        }

        let lead_weights: Vec<f64> = authors.iter().map(|a| a.productivity).collect();
        PaperGenerator {
            config: config.clone(),
            rng,
            name_strings,
            venue_strings,
            author_names,
            authors,
            by_topic,
            lead_weights,
            next_pid: 0,
        }
    }

    /// Papers not yet drawn.
    pub fn papers_remaining(&self) -> usize {
        self.config.num_papers - self.next_pid
    }

    /// Draw the next paper and its ground-truth author list, or `None`
    /// once `config.num_papers` papers have been drawn.
    fn next_paper(&mut self) -> Option<(Paper, Vec<AuthorId>)> {
        if self.next_pid >= self.config.num_papers {
            return None;
        }
        let pid = self.next_pid;
        self.next_pid += 1;
        let (config, rng, authors) = (&self.config, &mut self.rng, &self.authors);
        // Topic vocabularies: `topic{t}word{j}`, Zipf-weighted within topic so
        // rare words exist (they matter for γ₄ and γ₆-style IDF weighting).
        let topic_word = |t: usize, j: usize| format!("topic{t}word{j}");
        {
            let lead = weighted_index(&self.lead_weights, rng) as u32;
            let team = assemble_team(lead, authors, &self.by_topic, config, rng);
            let lead_st = &authors[lead as usize];

            // Title: general filler + the lead's personal niche + broader
            // topic vocabulary. The niche words are what make two papers by
            // the *same* author look more alike than two same-topic papers
            // by different authors.
            let len = rng.gen_range(config.title_len.0..=config.title_len.1);
            let title_topic = if rng.gen::<f64>() < config.title_noise {
                rng.gen_range(0..config.num_topics)
            } else {
                lead_st.topic
            };
            let mut words = Vec::with_capacity(len);
            for _ in 0..len {
                let roll: f64 = rng.gen();
                if roll < config.general_word_frac {
                    words.push(GENERAL_WORDS[rng.gen_range(0..GENERAL_WORDS.len())].to_string());
                } else if roll < config.general_word_frac + 0.4 && title_topic == lead_st.topic {
                    let w = lead_st.pet_words[rng.gen_range(0..lead_st.pet_words.len())];
                    words.push(topic_word(lead_st.topic, w));
                } else {
                    // Zipf-ish word rank within the (possibly noisy) topic.
                    let r = zipf_rank(config.words_per_topic, 1.1, rng);
                    words.push(topic_word(title_topic, r));
                }
            }

            let venue = if rng.gen::<f64>() < config.venue_noise {
                VenueId::from(rng.gen_range(0..self.venue_strings.len()))
            } else if rng.gen::<f64>() < 0.6 {
                lead_st.favourite_venue
            } else {
                VenueId::from(
                    lead_st.topic * config.venues_per_topic
                        + rng.gen_range(0..config.venues_per_topic),
                )
            };

            let (y0, y1) = lead_st.career;
            let year = if y0 >= y1 { y0 } else { rng.gen_range(y0..=y1) };

            let paper = Paper {
                id: PaperId::from(pid),
                authors: team.iter().map(|&a| authors[a as usize].name).collect(),
                title: words.join(" "),
                venue,
                year,
            };
            let truth = team.iter().map(|&a| AuthorId(a)).collect();
            Some((paper, truth))
        }
    }

    /// Assemble the corpus from the drained paper stream (every paper the
    /// iterator yielded, in order) and report what was generated.
    pub fn into_corpus(
        self,
        papers: Vec<Paper>,
        truth: Vec<Vec<AuthorId>>,
    ) -> (Corpus, GeneratorReport) {
        assert_eq!(
            papers.len(),
            self.config.num_papers,
            "the paper stream must be fully drained before corpus assembly"
        );
        let corpus = Corpus {
            papers,
            name_strings: self.name_strings,
            venue_strings: self.venue_strings,
            truth,
            author_names: self.author_names,
            config: Some(self.config),
        };
        debug_assert_eq!(corpus.validate(), Ok(()));

        let by_name = corpus.authors_by_name();
        let report = GeneratorReport {
            num_names: corpus.num_names(),
            ambiguous_names: by_name.iter().filter(|v| v.len() > 1).count(),
            max_authors_per_name: by_name.iter().map(Vec::len).max().unwrap_or(0),
            num_mentions: corpus.num_mentions(),
        };
        (corpus, report)
    }
}

impl Iterator for PaperGenerator {
    type Item = (Paper, Vec<AuthorId>);

    fn next(&mut self) -> Option<Self::Item> {
        self.next_paper()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.papers_remaining();
        (n, Some(n))
    }
}

impl std::fmt::Debug for PaperGenerator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PaperGenerator")
            .field("num_papers", &self.config.num_papers)
            .field("next_pid", &self.next_pid)
            .finish_non_exhaustive()
    }
}

/// Pick the lead's co-authors: mostly sticky neighbours (repeat
/// collaborations), occasionally random same-topic authors, rarely one
/// cross-topic author. The returned team has pairwise-distinct *names* so a
/// co-author list never contains the same name twice.
fn assemble_team(
    lead: u32,
    authors: &[AuthorState],
    by_topic: &[Vec<u32>],
    config: &CorpusConfig,
    rng: &mut StdRng,
) -> Vec<u32> {
    let mut team: Vec<u32> = vec![lead];
    let mut names_used = vec![authors[lead as usize].name];
    let lead_st = &authors[lead as usize];

    // Truncated geometric via repeated coin flips with mean ≈ mean_coauthors.
    let p_more = config.mean_coauthors / (1.0 + config.mean_coauthors);
    let mut k = 0usize;
    while k < config.max_coauthors && rng.gen::<f64>() < p_more {
        k += 1;
    }

    for _ in 0..k {
        let candidate = if !lead_st.neighbours.is_empty() && rng.gen::<f64>() < config.tie_strength
        {
            let weights: Vec<f64> = lead_st.neighbours.iter().map(|&(_, s)| s).collect();
            lead_st.neighbours[weighted_index(&weights, rng)].0
        } else {
            let members = &by_topic[lead_st.topic];
            members[rng.gen_range(0..members.len())]
        };
        let cname = authors[candidate as usize].name;
        if !names_used.contains(&cname) {
            team.push(candidate);
            names_used.push(cname);
        }
    }

    if rng.gen::<f64>() < config.cross_topic_prob {
        let other = rng.gen_range(0..authors.len()) as u32;
        let cname = authors[other as usize].name;
        if !names_used.contains(&cname) {
            team.push(other);
        }
    }
    team
}

/// Sample a rank in `0..n` with probability ∝ 1/(rank+1)^s.
fn zipf_rank(n: usize, s: f64, rng: &mut StdRng) -> usize {
    // Inverse-CDF on the harmonic partial sums would be exact; a simple
    // rejection loop is fast enough for title generation and allocation-free.
    loop {
        let r = rng.gen_range(0..n);
        let accept = 1.0 / ((r + 1) as f64).powf(s);
        if rng.gen::<f64>() < accept {
            return r;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CorpusConfig {
        CorpusConfig {
            num_authors: 300,
            num_papers: 1200,
            seed: 7,
            ..Default::default()
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Corpus::generate(&small());
        let b = Corpus::generate(&small());
        assert_eq!(a.papers, b.papers);
        assert_eq!(a.truth, b.truth);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Corpus::generate(&small());
        let b = Corpus::generate(&CorpusConfig { seed: 8, ..small() });
        assert_ne!(a.papers, b.papers);
    }

    #[test]
    fn generated_corpus_validates() {
        let c = Corpus::generate(&small());
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn produces_ambiguous_names() {
        let (_, report) = Corpus::generate_with_report(&CorpusConfig {
            num_authors: 1_000,
            num_papers: 3_000,
            seed: 7,
            ..Default::default()
        });
        assert!(
            report.ambiguous_names > 30,
            "expected name collisions, got {report:?}"
        );
        assert!(report.max_authors_per_name >= 3);
    }

    #[test]
    fn papers_have_distinct_names_per_author_list() {
        let c = Corpus::generate(&small());
        for p in &c.papers {
            let mut names = p.authors.clone();
            names.sort_unstable();
            names.dedup();
            assert_eq!(names.len(), p.authors.len(), "paper {:?}", p.id);
        }
    }

    #[test]
    fn repeat_collaborations_exist() {
        // Without sticky ties there are no η-SCRs and Stage 1 degenerates;
        // assert the generator produces pairs that co-occur often.
        let c = Corpus::generate(&small());
        let mut pair_counts: FxHashMap<(AuthorId, AuthorId), u32> = FxHashMap::default();
        for (p, t) in c.papers.iter().zip(&c.truth) {
            let _ = p;
            for i in 0..t.len() {
                for j in (i + 1)..t.len() {
                    let key = if t[i] < t[j] {
                        (t[i], t[j])
                    } else {
                        (t[j], t[i])
                    };
                    *pair_counts.entry(key).or_insert(0) += 1;
                }
            }
        }
        let repeats = pair_counts.values().filter(|&&c| c >= 3).count();
        assert!(repeats > 30, "only {repeats} author pairs with ≥3 papers");
    }

    #[test]
    fn years_within_configured_range() {
        let cfg = small();
        let c = Corpus::generate(&cfg);
        for p in &c.papers {
            assert!(p.year >= cfg.year_start && p.year <= cfg.year_end);
        }
    }

    #[test]
    fn titles_respect_length_bounds() {
        let cfg = small();
        let c = Corpus::generate(&cfg);
        for p in &c.papers {
            let n = p.title.split_whitespace().count();
            assert!(n >= cfg.title_len.0 && n <= cfg.title_len.1);
        }
    }

    #[test]
    #[should_panic(expected = "num_authors")]
    fn zero_authors_panics() {
        let _ = Corpus::generate(&CorpusConfig {
            num_authors: 0,
            ..Default::default()
        });
    }

    /// Draining the streaming generator in uneven chunks must reproduce
    /// `Corpus::generate` bit for bit — papers, truth, name/venue tables,
    /// and the report.
    #[test]
    fn chunked_streaming_matches_monolithic_generate() {
        let cfg = small();
        let (reference, ref_report) = Corpus::generate_with_report(&cfg);

        let mut gen = PaperGenerator::new(&cfg);
        let mut papers = Vec::new();
        let mut truth = Vec::new();
        for chunk in [1usize, 7, 64, usize::MAX] {
            for _ in 0..chunk {
                let Some((p, t)) = gen.next() else { break };
                papers.push(p);
                truth.push(t);
            }
        }
        assert_eq!(gen.papers_remaining(), 0);
        let (streamed, report) = gen.into_corpus(papers, truth);

        assert_eq!(streamed.papers, reference.papers);
        assert_eq!(streamed.truth, reference.truth);
        assert_eq!(streamed.name_strings, reference.name_strings);
        assert_eq!(streamed.venue_strings, reference.venue_strings);
        assert_eq!(streamed.author_names, reference.author_names);
        assert_eq!(report.num_mentions, ref_report.num_mentions);
        assert_eq!(report.ambiguous_names, ref_report.ambiguous_names);
    }

    #[test]
    #[should_panic(expected = "fully drained")]
    fn partial_drain_cannot_assemble_corpus() {
        let cfg = small();
        let mut gen = PaperGenerator::new(&cfg);
        let (p, t) = gen.next().unwrap();
        let _ = gen.into_corpus(vec![p], vec![t]);
    }
}
