//! Adversarial scenario presets for the conformance harness.
//!
//! The single seeded benchmark corpus exercises one regime: medium size,
//! moderate ambiguity, healthy collaboration structure. Disambiguation
//! quality is known to be sensitive to regimes that corpus never enters —
//! degree skew and name-frequency distribution (Kim 2018), and sparse
//! topology where structural signals carry nothing (Amancio et al. 2013).
//! Each [`ScenarioSpec`] here names one such regime and generates it
//! reproducibly from a single master seed:
//!
//! * **homonym storms** — Zipf exponents cranked up so many distinct
//!   authors share one name;
//! * **synonym/variant names** — post-generation name-noise transforms:
//!   given names folded to initials (abbreviation-induced collisions) and
//!   accented transliterations of surnames (unicode handling);
//! * **scale-free skew** — extreme Pareto productivity plus sticky ties, so
//!   a few hub authors dominate the collaboration graph;
//! * **tiny / sparse corpora** — edge regimes where most vertices are
//!   singletons and Stage 1 has almost nothing to hold on to;
//! * **streaming arrival orders** — a held-out paper stream, optionally
//!   shuffled or reversed, for the incremental interface.
//!
//! Every derived seed (corpus, embeddings, evaluation split, shuffles)
//! comes from [`derive_seed`] on the master seed, so a scenario is fully
//! reproducible from one recorded `u64`.

use rand::prelude::*;
use rand::rngs::StdRng;
use rustc_hash::FxHashMap;

use crate::generator::CorpusConfig;
use crate::model::{AuthorId, Corpus, NameId, Paper};

/// Deterministic seed stream: splitmix64 over `master` and a stream index.
/// Stream 0 is the corpus seed by convention; other subsystems (embeddings,
/// evaluation splits, shuffles) take their own stream so changing one never
/// perturbs another.
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    let mut z = master
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(stream.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Post-generation noise applied to author *name strings* (and, for
/// folding, to name identity itself).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NameNoise {
    /// Names exactly as generated.
    None,
    /// Fold given names to initials ("wei wang" → "w. wang"), merging every
    /// name that collides after folding — the abbreviation ambiguity of real
    /// bibliographies.
    AbbreviateGiven,
    /// Rewrite a seeded fraction of surnames with accented transliterations
    /// ("wang" → "wáng"): multi-byte unicode through every string path.
    AccentSurnames,
    /// Both of the above, folding first.
    AbbreviateAndAccent,
}

/// Order in which held-out papers arrive at the incremental interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalOrder {
    /// Corpus (generation) order — roughly chronological per author.
    Corpus,
    /// Newest first.
    Reversed,
    /// Seeded uniform shuffle.
    Shuffled,
}

/// One named adversarial regime: a corpus recipe plus the streaming
/// protocol for the incremental path.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Stable scenario id (kebab-case; test names and goldens key on it).
    pub name: &'static str,
    /// One-line description of the regime under test.
    pub summary: &'static str,
    /// The single seed everything derives from.
    pub master_seed: u64,
    /// Generator configuration; its `seed` field is overwritten with
    /// `derive_seed(master_seed, 0)` at build time.
    pub config: CorpusConfig,
    /// Name-string noise applied after generation.
    pub name_noise: NameNoise,
    /// Papers held out as the incremental stream.
    pub stream_tail: usize,
    /// Arrival order of the held-out stream.
    pub arrival: ArrivalOrder,
    /// Allowed |ΔB³-F| between the fit on the original and on a
    /// paper-order-permuted corpus (embedding training is order-sensitive,
    /// so the full pipeline is only *robust*, not invariant; Stage 1 must
    /// be exactly invariant regardless of this bound).
    pub permutation_b3_tolerance: f64,
}

impl ScenarioSpec {
    /// Seed stream indices (documented so SCENARIOS.json readers can
    /// re-derive them): 0 = corpus, 1 = embeddings, 2 = evaluation split,
    /// 3 = paper permutation, 4 = baseline context, 5 = accent noise,
    /// 6 = arrival shuffle, 7 = duplicate injection.
    pub fn corpus_seed(&self) -> u64 {
        derive_seed(self.master_seed, 0)
    }

    /// Embedding-training seed (stream 1).
    pub fn embedding_seed(&self) -> u64 {
        derive_seed(self.master_seed, 1)
    }

    /// Evaluation-split seed (stream 2), for
    /// [`crate::select_test_names_seeded`].
    pub fn eval_seed(&self) -> u64 {
        derive_seed(self.master_seed, 2)
    }

    /// Baseline-context seed (stream 4), for the differential panel's
    /// shared baseline embeddings.
    pub fn baseline_seed(&self) -> u64 {
        derive_seed(self.master_seed, 4)
    }

    /// Generate the scenario corpus: seeded generation plus name noise.
    pub fn build_corpus(&self) -> Corpus {
        let config = CorpusConfig {
            seed: self.corpus_seed(),
            ..self.config.clone()
        };
        let mut corpus = Corpus::generate(&config);
        match self.name_noise {
            NameNoise::None => {}
            NameNoise::AbbreviateGiven => corpus = fold_given_names(&corpus),
            NameNoise::AccentSurnames => {
                corpus = accent_surnames(&corpus, derive_seed(self.master_seed, 5), 0.4);
            }
            NameNoise::AbbreviateAndAccent => {
                corpus = fold_given_names(&corpus);
                corpus = accent_surnames(&corpus, derive_seed(self.master_seed, 5), 0.4);
            }
        }
        debug_assert_eq!(corpus.validate(), Ok(()));
        corpus
    }

    /// Split the scenario corpus for the incremental experiment: a base to
    /// fit on and the held-out stream in this scenario's arrival order.
    #[allow(clippy::type_complexity)]
    pub fn split_for_streaming(&self, corpus: &Corpus) -> (Corpus, Vec<(Paper, Vec<AuthorId>)>) {
        let (base, mut tail) = corpus.split_tail(self.stream_tail.min(corpus.papers.len() / 2));
        match self.arrival {
            ArrivalOrder::Corpus => {}
            ArrivalOrder::Reversed => tail.reverse(),
            ArrivalOrder::Shuffled => {
                let mut rng = StdRng::seed_from_u64(derive_seed(self.master_seed, 6));
                tail.shuffle(&mut rng);
            }
        }
        (base, tail)
    }
}

/// The conformance matrix: every named adversarial regime the harness runs.
/// Sizes are tuned so the whole matrix (several fits per scenario) stays
/// test-suite friendly in debug builds while still exercising each regime.
pub fn scenario_matrix() -> Vec<ScenarioSpec> {
    let base = CorpusConfig::default;
    vec![
        ScenarioSpec {
            name: "baseline-reference",
            summary: "the generator's default regime at small scale — the control row",
            master_seed: 0x5ce0_0001,
            config: CorpusConfig {
                num_authors: 150,
                num_papers: 600,
                surname_zipf: 1.6,
                given_zipf: 1.6,
                ..base()
            },
            name_noise: NameNoise::None,
            stream_tail: 30,
            arrival: ArrivalOrder::Corpus,
            permutation_b3_tolerance: 0.10,
        },
        ScenarioSpec {
            name: "homonym-storm",
            summary: "steep Zipf name pools: many distinct authors share each popular name",
            master_seed: 0x5ce0_0002,
            config: CorpusConfig {
                num_authors: 260,
                num_papers: 780,
                surname_zipf: 2.2,
                given_zipf: 2.2,
                ..base()
            },
            name_noise: NameNoise::None,
            stream_tail: 30,
            arrival: ArrivalOrder::Corpus,
            permutation_b3_tolerance: 0.12,
        },
        ScenarioSpec {
            name: "abbreviated-variants",
            summary: "given names folded to initials: abbreviation-induced homonyms",
            master_seed: 0x5ce0_0003,
            config: CorpusConfig {
                num_authors: 180,
                num_papers: 620,
                ..base()
            },
            name_noise: NameNoise::AbbreviateGiven,
            stream_tail: 25,
            arrival: ArrivalOrder::Corpus,
            permutation_b3_tolerance: 0.12,
        },
        ScenarioSpec {
            name: "unicode-transliteration",
            summary: "accented surname transliterations: multi-byte names end to end",
            master_seed: 0x5ce0_0004,
            config: CorpusConfig {
                num_authors: 150,
                num_papers: 520,
                surname_zipf: 1.4,
                ..base()
            },
            name_noise: NameNoise::AbbreviateAndAccent,
            stream_tail: 20,
            arrival: ArrivalOrder::Corpus,
            permutation_b3_tolerance: 0.12,
        },
        ScenarioSpec {
            name: "scale-free-hubs",
            summary: "extreme Pareto productivity + sticky ties: hub-dominated degree skew",
            master_seed: 0x5ce0_0005,
            config: CorpusConfig {
                num_authors: 200,
                num_papers: 700,
                surname_zipf: 1.6,
                given_zipf: 1.6,
                productivity_alpha: 1.05,
                tie_strength: 0.95,
                max_coauthors: 10,
                mean_coauthors: 3.0,
                ..base()
            },
            name_noise: NameNoise::None,
            stream_tail: 30,
            arrival: ArrivalOrder::Corpus,
            permutation_b3_tolerance: 0.12,
        },
        ScenarioSpec {
            name: "tiny-sparse",
            summary: "a few dozen authors, short papers: the small-corpus edge regime",
            master_seed: 0x5ce0_0006,
            config: CorpusConfig {
                num_authors: 26,
                num_papers: 110,
                num_topics: 4,
                surname_zipf: 2.0,
                given_zipf: 2.0,
                mean_coauthors: 1.0,
                ..base()
            },
            name_noise: NameNoise::None,
            stream_tail: 10,
            arrival: ArrivalOrder::Corpus,
            permutation_b3_tolerance: 0.20,
        },
        ScenarioSpec {
            name: "singleton-desert",
            summary: "collaboration so sparse that topology-only signals break down",
            master_seed: 0x5ce0_0007,
            config: CorpusConfig {
                num_authors: 160,
                num_papers: 500,
                surname_zipf: 1.6,
                given_zipf: 1.6,
                mean_coauthors: 0.4,
                tie_strength: 0.15,
                cross_topic_prob: 0.3,
                ..base()
            },
            name_noise: NameNoise::None,
            stream_tail: 25,
            arrival: ArrivalOrder::Corpus,
            permutation_b3_tolerance: 0.15,
        },
        ScenarioSpec {
            name: "dense-cliques",
            summary: "large co-author teams: triangle-heavy cliques stress the merge rules",
            master_seed: 0x5ce0_0008,
            config: CorpusConfig {
                num_authors: 140,
                num_papers: 460,
                surname_zipf: 1.6,
                given_zipf: 1.6,
                max_coauthors: 9,
                mean_coauthors: 4.5,
                tie_strength: 0.9,
                ..base()
            },
            name_noise: NameNoise::None,
            stream_tail: 20,
            arrival: ArrivalOrder::Corpus,
            permutation_b3_tolerance: 0.12,
        },
        ScenarioSpec {
            name: "topic-blur",
            summary: "titles and venues mostly noise: content channels carry little signal",
            master_seed: 0x5ce0_0009,
            config: CorpusConfig {
                num_authors: 160,
                num_papers: 560,
                surname_zipf: 1.6,
                given_zipf: 1.6,
                title_noise: 0.85,
                venue_noise: 0.75,
                ..base()
            },
            name_noise: NameNoise::None,
            stream_tail: 25,
            arrival: ArrivalOrder::Corpus,
            permutation_b3_tolerance: 0.15,
        },
        ScenarioSpec {
            name: "streaming-churn",
            summary: "a large shuffled held-out stream drives the incremental interface",
            master_seed: 0x5ce0_000a,
            config: CorpusConfig {
                num_authors: 180,
                num_papers: 660,
                surname_zipf: 1.6,
                given_zipf: 1.6,
                ..base()
            },
            name_noise: NameNoise::None,
            stream_tail: 90,
            arrival: ArrivalOrder::Shuffled,
            permutation_b3_tolerance: 0.10,
        },
        ScenarioSpec {
            name: "hot-name-query-skew",
            summary: "steep name skew + a big shuffled stream: the serving tier's regime",
            master_seed: 0x5ce0_000b,
            config: CorpusConfig {
                num_authors: 220,
                num_papers: 760,
                surname_zipf: 2.4,
                given_zipf: 2.4,
                ..base()
            },
            name_noise: NameNoise::None,
            stream_tail: 120,
            arrival: ArrivalOrder::Shuffled,
            permutation_b3_tolerance: 0.12,
        },
    ]
}

/// Look up one scenario by name.
pub fn scenario(name: &str) -> Option<ScenarioSpec> {
    scenario_matrix().into_iter().find(|s| s.name == name)
}

/// Fold every given name to its initial ("wei wang" → "w. wang") and merge
/// the names that collide after folding. Authors keep their identity; only
/// the *name* they publish under coarsens, so ambiguity rises sharply. If
/// folding makes two co-authors of one paper share a name, the later slot
/// is dropped (real bibliographies list each rendered name once).
pub fn fold_given_names(corpus: &Corpus) -> Corpus {
    let fold = |s: &str| -> String {
        match s.split_once(' ') {
            Some((given, rest)) => {
                let initial = given.chars().next().map(String::from).unwrap_or_default();
                format!("{initial}. {rest}")
            }
            None => s.to_string(),
        }
    };

    // Old name id → new (folded) name id, first-occurrence order.
    let mut folded_ids: FxHashMap<String, NameId> = FxHashMap::default();
    let mut new_strings: Vec<String> = Vec::new();
    let mut remap: Vec<NameId> = Vec::with_capacity(corpus.name_strings.len());
    for s in &corpus.name_strings {
        let f = fold(s);
        let id = *folded_ids.entry(f.clone()).or_insert_with(|| {
            new_strings.push(f);
            NameId::from(new_strings.len() - 1)
        });
        remap.push(id);
    }

    let mut papers = Vec::with_capacity(corpus.papers.len());
    let mut truth = Vec::with_capacity(corpus.truth.len());
    for (p, t) in corpus.papers.iter().zip(&corpus.truth) {
        let mut authors: Vec<NameId> = Vec::with_capacity(p.authors.len());
        let mut slot_truth: Vec<AuthorId> = Vec::with_capacity(t.len());
        for (&n, &a) in p.authors.iter().zip(t) {
            let folded = remap[n.index()];
            if authors.contains(&folded) {
                continue; // collision within one paper: drop the later slot
            }
            authors.push(folded);
            slot_truth.push(a);
        }
        papers.push(Paper {
            authors,
            ..p.clone()
        });
        truth.push(slot_truth);
    }

    let out = Corpus {
        papers,
        name_strings: new_strings,
        venue_strings: corpus.venue_strings.clone(),
        truth,
        author_names: corpus
            .author_names
            .iter()
            .map(|n| remap[n.index()])
            .collect(),
        config: corpus.config.clone(),
    };
    debug_assert_eq!(out.validate(), Ok(()));
    out
}

/// Rewrite a seeded `fraction` of name strings with accented surname
/// transliterations. Pure string noise: name *identity* is untouched, so
/// the partitioning problem is unchanged while every string-handling path
/// (serialization, tables, reports) sees multi-byte unicode.
pub fn accent_surnames(corpus: &Corpus, seed: u64, fraction: f64) -> Corpus {
    let accent = |c: char| -> char {
        match c {
            'a' => 'á',
            'e' => 'é',
            'i' => 'í',
            'o' => 'ó',
            'u' => 'ú',
            'n' => 'ñ',
            other => other,
        }
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let name_strings: Vec<String> = corpus
        .name_strings
        .iter()
        .map(|s| {
            if rng.gen::<f64>() >= fraction {
                return s.clone();
            }
            match s.rsplit_once(' ') {
                Some((given, surname)) => {
                    let accented: String = surname.chars().map(accent).collect();
                    format!("{given} {accented}")
                }
                None => s.chars().map(accent).collect(),
            }
        })
        .collect();
    let out = Corpus {
        name_strings,
        ..corpus.clone()
    };
    debug_assert_eq!(out.validate(), Ok(()));
    out
}

/// Return a copy of `corpus` with its papers permuted by the seeded
/// permutation, ids renumbered to stay self-consistent, together with
/// `perm` where `perm[new_position] = old_paper_index`. The metamorphic
/// harness uses this to check order-(in)sensitivity of the pipeline.
pub fn permute_papers(corpus: &Corpus, seed: u64) -> (Corpus, Vec<usize>) {
    let mut perm: Vec<usize> = (0..corpus.papers.len()).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    perm.shuffle(&mut rng);
    let papers: Vec<Paper> = perm
        .iter()
        .enumerate()
        .map(|(new, &old)| Paper {
            id: crate::model::PaperId::from(new),
            ..corpus.papers[old].clone()
        })
        .collect();
    let truth: Vec<Vec<AuthorId>> = perm.iter().map(|&old| corpus.truth[old].clone()).collect();
    let out = Corpus {
        papers,
        truth,
        name_strings: corpus.name_strings.clone(),
        venue_strings: corpus.venue_strings.clone(),
        author_names: corpus.author_names.clone(),
        config: corpus.config.clone(),
    };
    debug_assert_eq!(out.validate(), Ok(()));
    (out, perm)
}

/// Append exact duplicates of `count` seeded multi-author papers (same
/// title, venue, year, authors; fresh ids). Returns the new corpus and the
/// (original, duplicate) paper-id pairs. Because a duplicated paper repeats
/// every one of its co-author name pairs, each such pair reaches η = 2
/// support, so duplicate mention pairs *must* co-cluster — the
/// duplicate-injection idempotence invariant.
pub fn duplicate_papers(corpus: &Corpus, count: usize, seed: u64) -> (Corpus, Vec<(usize, usize)>) {
    let mut candidates: Vec<usize> = corpus
        .papers
        .iter()
        .enumerate()
        .filter(|(_, p)| p.authors.len() >= 2)
        .map(|(i, _)| i)
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    candidates.shuffle(&mut rng);
    candidates.truncate(count);
    candidates.sort_unstable(); // deterministic append order

    let mut out = corpus.clone();
    let mut pairs = Vec::with_capacity(candidates.len());
    for &orig in &candidates {
        let new_id = out.papers.len();
        let mut dup = corpus.papers[orig].clone();
        dup.id = crate::model::PaperId::from(new_id);
        out.papers.push(dup);
        out.truth.push(corpus.truth[orig].clone());
        pairs.push((orig, new_id));
    }
    debug_assert_eq!(out.validate(), Ok(()));
    (out, pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_names_are_unique_and_plentiful() {
        let m = scenario_matrix();
        assert!(m.len() >= 8, "need at least 8 scenarios, have {}", m.len());
        let mut names: Vec<&str> = m.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), m.len(), "duplicate scenario names");
    }

    #[test]
    fn derive_seed_streams_are_distinct() {
        let a = derive_seed(7, 0);
        let b = derive_seed(7, 1);
        let c = derive_seed(8, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // And stable.
        assert_eq!(derive_seed(7, 0), a);
    }

    #[test]
    fn scenario_corpora_are_reproducible_from_master_seed() {
        for spec in scenario_matrix() {
            let a = spec.build_corpus();
            let b = spec.build_corpus();
            assert_eq!(a.papers, b.papers, "{}", spec.name);
            assert_eq!(a.truth, b.truth, "{}", spec.name);
            assert_eq!(a.name_strings, b.name_strings, "{}", spec.name);
        }
    }

    #[test]
    fn folding_merges_names_and_keeps_consistency() {
        let spec = scenario("abbreviated-variants").unwrap();
        let raw = Corpus::generate(&CorpusConfig {
            seed: spec.corpus_seed(),
            ..spec.config.clone()
        });
        let folded = fold_given_names(&raw);
        assert_eq!(folded.validate(), Ok(()));
        assert!(
            folded.num_names() < raw.num_names(),
            "folding should merge names: {} -> {}",
            raw.num_names(),
            folded.num_names()
        );
        // Every folded name is an initial form.
        for s in &folded.name_strings {
            let given = s.split(' ').next().unwrap();
            assert!(given.ends_with('.'), "unfolded given name: {s}");
        }
    }

    #[test]
    fn accenting_changes_strings_only() {
        let spec = scenario("unicode-transliteration").unwrap();
        let raw = Corpus::generate(&CorpusConfig {
            seed: spec.corpus_seed(),
            ..spec.config.clone()
        });
        let accented = accent_surnames(&raw, 11, 0.5);
        assert_eq!(accented.validate(), Ok(()));
        assert_eq!(accented.papers, raw.papers);
        assert_eq!(accented.truth, raw.truth);
        assert!(
            accented.name_strings.iter().any(|s| !s.is_ascii()),
            "expected some accented names"
        );
    }

    #[test]
    fn permutation_roundtrips_mentions() {
        let spec = scenario("baseline-reference").unwrap();
        let c = spec.build_corpus();
        let (p, perm) = permute_papers(&c, 3);
        assert_eq!(p.validate(), Ok(()));
        assert_eq!(p.papers.len(), c.papers.len());
        for (new, &old) in perm.iter().enumerate() {
            assert_eq!(p.papers[new].title, c.papers[old].title);
            assert_eq!(p.papers[new].authors, c.papers[old].authors);
            assert_eq!(p.truth[new], c.truth[old]);
        }
    }

    #[test]
    fn duplication_appends_exact_copies() {
        let spec = scenario("baseline-reference").unwrap();
        let c = spec.build_corpus();
        let (d, pairs) = duplicate_papers(&c, 15, 5);
        assert_eq!(d.validate(), Ok(()));
        assert_eq!(d.papers.len(), c.papers.len() + pairs.len());
        for &(orig, dup) in &pairs {
            assert_eq!(d.papers[dup].authors, c.papers[orig].authors);
            assert_eq!(d.papers[dup].title, c.papers[orig].title);
            assert_eq!(d.truth[dup], c.truth[orig]);
            assert!(d.papers[orig].authors.len() >= 2);
        }
    }

    #[test]
    fn homonym_storm_is_actually_stormy() {
        let spec = scenario("homonym-storm").unwrap();
        let c = spec.build_corpus();
        let by_name = c.authors_by_name();
        let max = by_name.iter().map(Vec::len).max().unwrap_or(0);
        assert!(max >= 6, "homonym storm max authors/name = {max}");
    }

    #[test]
    fn streaming_orders_cover_the_same_papers() {
        let spec = scenario("streaming-churn").unwrap();
        let c = spec.build_corpus();
        let (base, tail) = spec.split_for_streaming(&c);
        assert_eq!(base.papers.len() + tail.len(), c.papers.len());
        let mut ids: Vec<u32> = tail.iter().map(|(p, _)| p.id.0).collect();
        ids.sort_unstable();
        let expect: Vec<u32> = (base.papers.len() as u32..c.papers.len() as u32).collect();
        assert_eq!(ids, expect);
    }
}
