//! Core data model: papers, names, authors, venues, mentions.

use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};

use crate::generator::CorpusConfig;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub u32);

        impl $name {
            /// The raw index, usable directly as a `Vec` index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<usize> for $name {
            /// Checked narrowing: ids are `u32` on disk and in every slab, so
            /// an index past `u32::MAX` is a corpus too large for the id
            /// width — fail loudly instead of silently truncating (the old
            /// `debug_assert` + `as` pattern wrapped ids in release builds).
            #[inline]
            fn from(v: usize) -> Self {
                match u32::try_from(v) {
                    Ok(raw) => Self(raw),
                    Err(_) => panic!(
                        concat!(stringify!($name), " overflow: index {} exceeds u32::MAX"),
                        v
                    ),
                }
            }
        }
    };
}

id_type!(
    /// Identifier of an author *name* (the ambiguous string, e.g. "Wei Wang").
    NameId
);
id_type!(
    /// Identifier of a real, distinct author (ground truth). Several authors
    /// may share one [`NameId`].
    AuthorId
);
id_type!(
    /// Identifier of a paper.
    PaperId
);
id_type!(
    /// Identifier of a publication venue.
    VenueId
);

/// One bibliographic record: the four attributes the paper's problem
/// definition requires (co-author list, title, venue, year).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Paper {
    /// This paper's id; equals its index in [`Corpus::papers`].
    pub id: PaperId,
    /// Co-author list as it appears on the paper: ambiguous names, in order.
    pub authors: Vec<NameId>,
    /// Title text (whitespace-separated words; lowercased by the generator).
    pub title: String,
    /// Publication venue.
    pub venue: VenueId,
    /// Publication year.
    pub year: u16,
}

/// An *author mention*: one slot of one paper's co-author list.
///
/// Mentions are the unit of disambiguation: a disambiguator partitions the
/// mentions of each name into hypothesised authors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Mention {
    /// The paper containing the mention.
    pub paper: PaperId,
    /// Index into [`Paper::authors`].
    pub slot: u32,
}

impl Mention {
    /// Construct a mention from raw indices. The slot is narrowed with the
    /// same checked conversion as the id newtypes: an author list longer
    /// than `u32::MAX` fails loudly rather than aliasing another slot.
    #[inline]
    pub fn new(paper: PaperId, slot: usize) -> Self {
        let slot = u32::try_from(slot)
            .unwrap_or_else(|_| panic!("Mention slot overflow: slot {slot} exceeds u32::MAX"));
        Self { paper, slot }
    }
}

/// A paper database with ground truth, string tables, and derived indexes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Corpus {
    /// All papers; `papers[i].id == PaperId(i)`.
    pub papers: Vec<Paper>,
    /// Name strings, indexed by [`NameId`].
    pub name_strings: Vec<String>,
    /// Venue strings, indexed by [`VenueId`].
    pub venue_strings: Vec<String>,
    /// Ground truth: `truth[p][slot]` is the real author of that mention.
    pub truth: Vec<Vec<AuthorId>>,
    /// The name each ground-truth author publishes under.
    pub author_names: Vec<NameId>,
    /// The generator configuration (kept for provenance), if generated.
    pub config: Option<CorpusConfig>,
}

impl Corpus {
    /// Number of distinct author names.
    #[inline]
    pub fn num_names(&self) -> usize {
        self.name_strings.len()
    }

    /// Number of distinct ground-truth authors.
    #[inline]
    pub fn num_authors(&self) -> usize {
        self.author_names.len()
    }

    /// Number of venues.
    #[inline]
    pub fn num_venues(&self) -> usize {
        self.venue_strings.len()
    }

    /// Total author-paper pairs (mentions) — the paper reports 2,393,969 for
    /// its DBLP snapshot.
    pub fn num_mentions(&self) -> usize {
        self.papers.iter().map(|p| p.authors.len()).sum()
    }

    /// Look up a paper.
    #[inline]
    pub fn paper(&self, id: PaperId) -> &Paper {
        &self.papers[id.index()]
    }

    /// The name at a mention.
    #[inline]
    pub fn name_of(&self, m: Mention) -> NameId {
        self.papers[m.paper.index()].authors[m.slot as usize]
    }

    /// The ground-truth author at a mention.
    #[inline]
    pub fn truth_of(&self, m: Mention) -> AuthorId {
        self.truth[m.paper.index()][m.slot as usize]
    }

    /// Iterate over every mention in the corpus, in (paper, slot) order.
    pub fn mentions(&self) -> impl Iterator<Item = Mention> + '_ {
        self.papers
            .iter()
            .flat_map(|p| (0..p.authors.len()).map(move |slot| Mention::new(p.id, slot)))
    }

    /// All mentions of one name, in (paper, slot) order.
    pub fn mentions_of_name(&self, name: NameId) -> Vec<Mention> {
        let mut out = Vec::new();
        for p in &self.papers {
            for (slot, &n) in p.authors.iter().enumerate() {
                if n == name {
                    out.push(Mention::new(p.id, slot));
                }
            }
        }
        out
    }

    /// Build a map from name to the papers that mention it (each paper listed
    /// once even if — unusually — a name appears twice on one paper).
    pub fn papers_by_name(&self) -> FxHashMap<NameId, Vec<PaperId>> {
        let mut map: FxHashMap<NameId, Vec<PaperId>> = FxHashMap::default();
        for p in &self.papers {
            let mut seen_prev = [None::<NameId>; 0];
            let _ = &mut seen_prev;
            for (i, &n) in p.authors.iter().enumerate() {
                // Skip duplicate occurrences of the same name on one paper.
                if p.authors[..i].contains(&n) {
                    continue;
                }
                map.entry(n).or_default().push(p.id);
            }
        }
        map
    }

    /// Ground-truth partition of a name's mentions, as disjoint mention sets
    /// keyed by author. Useful for building oracle clusterings in tests.
    pub fn truth_partition(&self, name: NameId) -> FxHashMap<AuthorId, Vec<Mention>> {
        let mut map: FxHashMap<AuthorId, Vec<Mention>> = FxHashMap::default();
        for m in self.mentions_of_name(name) {
            map.entry(self.truth_of(m)).or_default().push(m);
        }
        map
    }

    /// Authors that publish under each name.
    pub fn authors_by_name(&self) -> Vec<Vec<AuthorId>> {
        let mut by_name: Vec<Vec<AuthorId>> = vec![Vec::new(); self.num_names()];
        for (a, &n) in self.author_names.iter().enumerate() {
            by_name[n.index()].push(AuthorId::from(a));
        }
        by_name
    }

    /// Restrict the corpus to its first `k` papers (prefix subsample),
    /// renumbering nothing: ids stay valid because papers are a prefix.
    /// Used by the data-scale experiments (Table V / Fig. 5).
    pub fn prefix(&self, k: usize) -> Corpus {
        let k = k.min(self.papers.len());
        Corpus {
            papers: self.papers[..k].to_vec(),
            name_strings: self.name_strings.clone(),
            venue_strings: self.venue_strings.clone(),
            truth: self.truth[..k].to_vec(),
            author_names: self.author_names.clone(),
            config: self.config.clone(),
        }
    }

    /// Split off the last `k` papers as a held-out set (for the incremental
    /// experiment, Table VI). Returns `(base, held_out)`.
    pub fn split_tail(&self, k: usize) -> (Corpus, Vec<(Paper, Vec<AuthorId>)>) {
        let k = k.min(self.papers.len());
        let cut = self.papers.len() - k;
        let base = self.prefix(cut);
        let tail = self.papers[cut..]
            .iter()
            .cloned()
            .zip(self.truth[cut..].iter().cloned())
            .collect();
        (base, tail)
    }

    /// Validate internal consistency; returns a description of the first
    /// violation found. Primarily used by tests and after deserialisation.
    pub fn validate(&self) -> Result<(), String> {
        if self.papers.len() != self.truth.len() {
            return Err(format!(
                "papers/truth length mismatch: {} vs {}",
                self.papers.len(),
                self.truth.len()
            ));
        }
        for (i, p) in self.papers.iter().enumerate() {
            if p.id.index() != i {
                return Err(format!("paper {i} has id {:?}", p.id));
            }
            if p.authors.len() != self.truth[i].len() {
                return Err(format!("paper {i}: authors/truth arity mismatch"));
            }
            if p.authors.is_empty() {
                return Err(format!("paper {i} has no authors"));
            }
            if p.venue.index() >= self.venue_strings.len() {
                return Err(format!("paper {i}: venue out of range"));
            }
            for (&n, &a) in p.authors.iter().zip(&self.truth[i]) {
                if n.index() >= self.name_strings.len() {
                    return Err(format!("paper {i}: name out of range"));
                }
                if a.index() >= self.author_names.len() {
                    return Err(format!("paper {i}: author out of range"));
                }
                if self.author_names[a.index()] != n {
                    return Err(format!(
                        "paper {i}: truth author {a:?} does not bear name {n:?}"
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Corpus {
        // Two authors share name 0; author 2 has name 1.
        Corpus {
            papers: vec![
                Paper {
                    id: PaperId(0),
                    authors: vec![NameId(0), NameId(1)],
                    title: "deep learning graphs".into(),
                    venue: VenueId(0),
                    year: 2015,
                },
                Paper {
                    id: PaperId(1),
                    authors: vec![NameId(0)],
                    title: "database indexing".into(),
                    venue: VenueId(1),
                    year: 2016,
                },
            ],
            name_strings: vec!["wei wang".into(), "lei zou".into()],
            venue_strings: vec!["ICDE".into(), "VLDB".into()],
            truth: vec![vec![AuthorId(0), AuthorId(2)], vec![AuthorId(1)]],
            author_names: vec![NameId(0), NameId(0), NameId(1)],
            config: None,
        }
    }

    #[test]
    fn mention_lookup_roundtrip() {
        let c = tiny();
        let m = Mention::new(PaperId(0), 1);
        assert_eq!(c.name_of(m), NameId(1));
        assert_eq!(c.truth_of(m), AuthorId(2));
    }

    #[test]
    fn counts() {
        let c = tiny();
        assert_eq!(c.num_names(), 2);
        assert_eq!(c.num_authors(), 3);
        assert_eq!(c.num_mentions(), 3);
    }

    #[test]
    fn mentions_of_name_finds_all_slots() {
        let c = tiny();
        let ms = c.mentions_of_name(NameId(0));
        assert_eq!(
            ms,
            vec![Mention::new(PaperId(0), 0), Mention::new(PaperId(1), 0)]
        );
    }

    #[test]
    fn truth_partition_separates_authors() {
        let c = tiny();
        let part = c.truth_partition(NameId(0));
        assert_eq!(part.len(), 2);
        assert_eq!(part[&AuthorId(0)], vec![Mention::new(PaperId(0), 0)]);
        assert_eq!(part[&AuthorId(1)], vec![Mention::new(PaperId(1), 0)]);
    }

    #[test]
    fn papers_by_name_dedups_within_paper() {
        let mut c = tiny();
        c.papers[0].authors = vec![NameId(0), NameId(0)];
        c.truth[0] = vec![AuthorId(0), AuthorId(1)];
        let map = c.papers_by_name();
        assert_eq!(map[&NameId(0)], vec![PaperId(0), PaperId(1)]);
    }

    #[test]
    fn validate_accepts_consistent_corpus() {
        assert_eq!(tiny().validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_wrong_name_binding() {
        let mut c = tiny();
        c.truth[1][0] = AuthorId(2); // author 2 bears name 1, paper says name 0
        assert!(c.validate().is_err());
    }

    #[test]
    fn prefix_keeps_consistency() {
        let c = tiny();
        let p = c.prefix(1);
        assert_eq!(p.papers.len(), 1);
        assert_eq!(p.validate(), Ok(()));
    }

    #[test]
    fn split_tail_partitions_papers() {
        let c = tiny();
        let (base, tail) = c.split_tail(1);
        assert_eq!(base.papers.len(), 1);
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].0.id, PaperId(1));
    }

    #[test]
    fn authors_by_name_groups_shared_names() {
        let c = tiny();
        let by = c.authors_by_name();
        assert_eq!(by[0], vec![AuthorId(0), AuthorId(1)]);
        assert_eq!(by[1], vec![AuthorId(2)]);
    }

    /// Ids are u32-wide on disk and in every slab; an index past `u32::MAX`
    /// must fail loudly (the old debug_assert + `as` cast truncated in
    /// release builds).
    #[test]
    #[should_panic(expected = "NameId overflow")]
    fn id_from_usize_overflow_panics() {
        let _ = NameId::from(u32::MAX as usize + 1);
    }

    #[test]
    #[should_panic(expected = "Mention slot overflow")]
    fn mention_slot_overflow_panics() {
        let _ = Mention::new(PaperId(0), u32::MAX as usize + 1);
    }

    #[test]
    fn id_from_usize_roundtrips_at_the_boundary() {
        assert_eq!(NameId::from(u32::MAX as usize).index(), u32::MAX as usize);
    }
}
