//! Descriptive statistics over a corpus (powers Fig. 3a and the generator's
//! calibration tests).

use rustc_hash::FxHashMap;

use crate::model::Corpus;

/// A frequency-of-frequencies histogram: `counts[k]` = number of entities
/// observed exactly `k` times. Index 0 is unused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegreeHistogram {
    counts: Vec<u64>,
}

impl DegreeHistogram {
    /// Build from raw per-entity frequencies.
    pub fn from_frequencies<I: IntoIterator<Item = usize>>(freqs: I) -> Self {
        let mut counts: Vec<u64> = Vec::new();
        for f in freqs {
            if f >= counts.len() {
                counts.resize(f + 1, 0);
            }
            counts[f] += 1;
        }
        Self { counts }
    }

    /// `(frequency, #entities)` pairs with non-zero mass, ascending.
    pub fn points(&self) -> Vec<(usize, u64)> {
        self.counts
            .iter()
            .enumerate()
            .skip(1)
            .filter(|&(_, &c)| c > 0)
            .map(|(f, &c)| (f, c))
            .collect()
    }

    /// Number of entities covered.
    pub fn total_entities(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Maximum observed frequency.
    pub fn max_frequency(&self) -> usize {
        self.counts.iter().rposition(|&c| c > 0).unwrap_or(0)
    }

    /// Least-squares slope of the log-log histogram — the number printed on
    /// Fig. 3 (≈ −1.68 for papers-per-name, ≈ −3.17 for 2-itemsets on DBLP).
    pub fn powerlaw_slope(&self) -> f64 {
        let pts: Vec<(f64, f64)> = self
            .points()
            .into_iter()
            .map(|(f, c)| ((f as f64).ln(), (c as f64).ln()))
            .collect();
        log_log_slope_of(&pts)
    }
}

/// Least-squares slope through `(ln x, ln y)` pairs.
fn log_log_slope_of(pts: &[(f64, f64)]) -> f64 {
    if pts.len() < 2 {
        return f64::NAN;
    }
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

/// Least-squares slope of `ln y` on `ln x` for raw positive points.
pub fn log_log_slope(points: &[(f64, f64)]) -> f64 {
    let pts: Vec<(f64, f64)> = points
        .iter()
        .filter(|p| p.0 > 0.0 && p.1 > 0.0)
        .map(|p| (p.0.ln(), p.1.ln()))
        .collect();
    log_log_slope_of(&pts)
}

/// Papers-per-name histogram (Fig. 3a): how many names have exactly `k`
/// papers mentioning them.
pub fn papers_per_name(corpus: &Corpus) -> DegreeHistogram {
    let mut per_name: FxHashMap<u32, usize> = FxHashMap::default();
    for p in &corpus.papers {
        for (i, &n) in p.authors.iter().enumerate() {
            if p.authors[..i].contains(&n) {
                continue;
            }
            *per_name.entry(n.0).or_insert(0) += 1;
        }
    }
    DegreeHistogram::from_frequencies(per_name.into_values())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::CorpusConfig;

    #[test]
    fn histogram_counts_frequencies() {
        let h = DegreeHistogram::from_frequencies(vec![1, 1, 2, 5]);
        assert_eq!(h.points(), vec![(1, 2), (2, 1), (5, 1)]);
        assert_eq!(h.total_entities(), 4);
        assert_eq!(h.max_frequency(), 5);
    }

    #[test]
    fn slope_of_exact_powerlaw_is_exponent() {
        // y = x^-2 exactly.
        let pts: Vec<(f64, f64)> = (1..50).map(|x| (x as f64, (x as f64).powi(-2))).collect();
        let s = log_log_slope(&pts);
        assert!((s + 2.0).abs() < 1e-9, "slope {s}");
    }

    #[test]
    fn slope_needs_two_points() {
        assert!(log_log_slope(&[(1.0, 1.0)]).is_nan());
    }

    #[test]
    fn generated_corpus_has_heavy_tailed_names() {
        let c = Corpus::generate(&CorpusConfig {
            num_authors: 1_000,
            num_papers: 5_000,
            seed: 11,
            ..Default::default()
        });
        let h = papers_per_name(&c);
        let slope = h.powerlaw_slope();
        // Negative and meaningfully steep: heavy tail exists.
        assert!(slope < -0.8, "papers-per-name slope {slope}");
        assert!(h.max_frequency() > 20, "max freq {}", h.max_frequency());
    }

    #[test]
    fn papers_per_name_ignores_duplicate_name_on_one_paper() {
        use crate::model::*;
        let c = Corpus {
            papers: vec![Paper {
                id: PaperId(0),
                authors: vec![NameId(0), NameId(0)],
                title: String::new(),
                venue: VenueId(0),
                year: 2000,
            }],
            name_strings: vec!["x".into()],
            venue_strings: vec!["v".into()],
            truth: vec![vec![AuthorId(0), AuthorId(1)]],
            author_names: vec![NameId(0), NameId(0)],
            config: None,
        };
        let h = papers_per_name(&c);
        assert_eq!(h.points(), vec![(1, 1)]);
    }
}
