//! Bibliographic corpus substrate for the IUAD reproduction.
//!
//! The paper evaluates on a DBLP snapshot (641,377 papers / 72,522 author
//! names) that is not redistributable and not reachable offline. This crate
//! provides the closest synthetic equivalent: a corpus generator that
//! produces papers with co-author *name* lists, titles, venues, and years,
//! together with **ground-truth author identities** for every author mention.
//!
//! The generator is calibrated to the two empirical observations the paper's
//! Stage-1 analysis rests on (Fig. 3):
//!
//! 1. the number of papers per author name follows a power law, and
//! 2. the co-occurrence frequency of name pairs (frequent 2-itemsets over
//!    co-author lists) follows a power law — i.e. collaborations repeat far
//!    more often than independence would predict.
//!
//! Both arise here from power-law author productivity plus a
//! preferential-attachment collaboration graph with sticky ties.
//!
//! # Quick start
//!
//! ```
//! use iuad_corpus::{CorpusConfig, Corpus};
//!
//! let corpus = Corpus::generate(&CorpusConfig { num_authors: 200, num_papers: 600, seed: 7, ..Default::default() });
//! assert_eq!(corpus.papers.len(), 600);
//! // Every mention has a ground-truth author.
//! let m = corpus.mentions().next().unwrap();
//! let _truth = corpus.truth_of(m);
//! ```

#![warn(missing_docs)]

mod generator;
mod io;
mod model;
mod names;
pub mod scenario;
mod stats;
mod testset;

pub use generator::{CorpusConfig, GeneratorReport, PaperGenerator};
pub use io::{load_jsonl, save_jsonl, CorpusIoError};
pub use model::{AuthorId, Corpus, Mention, NameId, Paper, PaperId, VenueId};
pub use names::NamePools;
pub use scenario::{
    accent_surnames, derive_seed, duplicate_papers, fold_given_names, permute_papers,
    scenario_matrix, ArrivalOrder, NameNoise, ScenarioSpec,
};
pub use stats::{log_log_slope, papers_per_name, DegreeHistogram};
pub use testset::{select_test_names, select_test_names_seeded, TestName, TestSet};
