//! Umbrella crate for the IUAD reproduction workspace.
//!
//! This crate re-exports the public API of every member crate so that
//! examples and integration tests can use a single dependency. Library
//! consumers should depend on the individual crates (`iuad-core`,
//! `iuad-corpus`, ...) directly.

#![warn(missing_docs)]

pub use iuad_baselines as baselines;
pub use iuad_cluster as cluster;
pub use iuad_core as core;
pub use iuad_corpus as corpus;
pub use iuad_ensemble as ensemble;
pub use iuad_eval as eval;
pub use iuad_fpgrowth as fpgrowth;
pub use iuad_graph as graph;
pub use iuad_mixture as mixture;
pub use iuad_par as par;
pub use iuad_scenarios as scenarios;
pub use iuad_serve as serve;
pub use iuad_text as text;
